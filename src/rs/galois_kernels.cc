#include "src/rs/galois_kernels.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/rs/galois.h"

#if defined(__x86_64__) || defined(__i386__)
#define CYRUS_GALOIS_X86 1
#include <immintrin.h>
#else
#define CYRUS_GALOIS_X86 0
#endif

namespace cyrus {
namespace {

// --- Split multiplication tables -------------------------------------------
//
// For each multiplier c: lo[c][v] = c * v and hi[c][v] = c * (v << 4) for
// v in [0, 16). A byte b = (h << 4) | l then satisfies
// c * b = lo[c][l] ^ hi[c][h] by distributivity, which is exactly what one
// pshufb per nibble computes 16/32 lanes at a time. 8 KB total, built once.
struct SplitTables {
  alignas(64) uint8_t lo[256][16];
  alignas(64) uint8_t hi[256][16];

  SplitTables() {
    // Products are built through Galois::Mul, whose zero guard never reads
    // log_table()[0]. That entry is a poisoned sentinel
    // (Galois::kLogZeroSentinel) precisely so a kernel author who tries to
    // derive these constants from the raw log/exp tables trips an
    // out-of-bounds read instead of silently baking garbage into row 0.
    assert(Galois::log_table()[0] == Galois::kLogZeroSentinel);
    for (int c = 0; c < 256; ++c) {
      for (int v = 0; v < 16; ++v) {
        lo[c][v] = Galois::Mul(static_cast<uint8_t>(c), static_cast<uint8_t>(v));
        hi[c][v] =
            Galois::Mul(static_cast<uint8_t>(c), static_cast<uint8_t>(v << 4));
      }
    }
  }
};

const SplitTables& split_tables() {
  static const SplitTables tables;
  return tables;
}

// --- Scalar kernel (reference oracle) --------------------------------------

void MulAddRowScalar(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len) {
  if (c == 0 || len == 0) {
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const auto& exp = Galois::exp_table();
  const auto& log = Galois::log_table();
  const uint16_t log_c = log[c];
  for (size_t i = 0; i < len; ++i) {
    const uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= exp[log_c + log[s]];
    }
  }
}

void MulRowScalar(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len) {
  if (len == 0) {
    return;
  }
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const auto& exp = Galois::exp_table();
  const auto& log = Galois::log_table();
  const uint16_t log_c = log[c];
  for (size_t i = 0; i < len; ++i) {
    const uint8_t s = src[i];
    dst[i] = (s == 0) ? 0 : exp[log_c + log[s]];
  }
}

// Fused multi-row encode shared by every kernel: strip the source so one
// L1-resident load feeds all `rows` accumulations, delegating the byte work
// to the kernel's own mul_add_row.
constexpr size_t kEncodeStripBytes = 4096;

template <void (*MulAdd)(uint8_t, const uint8_t*, uint8_t*, size_t)>
void EncodeBlockWith(const uint8_t* coeffs, size_t rows, const uint8_t* src,
                     size_t len, uint8_t* const* dsts) {
  for (size_t off = 0; off < len; off += kEncodeStripBytes) {
    const size_t strip = len - off < kEncodeStripBytes ? len - off : kEncodeStripBytes;
    for (size_t r = 0; r < rows; ++r) {
      MulAdd(coeffs[r], src + off, dsts[r] + off, strip);
    }
  }
}

#if CYRUS_GALOIS_X86

// --- SSSE3 kernel -----------------------------------------------------------

__attribute__((target("ssse3"))) void MulAddRowSsse3(uint8_t c, const uint8_t* src,
                                                     uint8_t* dst, size_t len) {
  if (c == 0 || len == 0) {
    return;
  }
  size_t i = 0;
  if (c == 1) {
    for (; i + 16 <= len; i += 16) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, v));
    }
    for (; i < len; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const SplitTables& tables = split_tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo[c]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi[c]));
  const __m128i nibble = _mm_set1_epi8(0x0f);
  for (; i + 16 <= len; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_and_si128(v, nibble);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), nibble);
    const __m128i product =
        _mm_xor_si128(_mm_shuffle_epi8(tlo, l), _mm_shuffle_epi8(thi, h));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, product));
  }
  if (i < len) {
    MulAddRowScalar(c, src + i, dst + i, len - i);
  }
}

__attribute__((target("ssse3"))) void MulRowSsse3(uint8_t c, const uint8_t* src,
                                                  uint8_t* dst, size_t len) {
  if (len == 0) {
    return;
  }
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const SplitTables& tables = split_tables();
  const __m128i tlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo[c]));
  const __m128i thi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi[c]));
  const __m128i nibble = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_and_si128(v, nibble);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), nibble);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(_mm_shuffle_epi8(tlo, l), _mm_shuffle_epi8(thi, h)));
  }
  if (i < len) {
    MulRowScalar(c, src + i, dst + i, len - i);
  }
}

// --- AVX2 kernel ------------------------------------------------------------

__attribute__((target("avx2"))) void MulAddRowAvx2(uint8_t c, const uint8_t* src,
                                                   uint8_t* dst, size_t len) {
  if (c == 0 || len == 0) {
    return;
  }
  size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= len; i += 32) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, v));
    }
    for (; i < len; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const SplitTables& tables = split_tables();
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo[c])));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi[c])));
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  // 2x unrolled: the two shuffle chains are independent, hiding pshufb
  // latency behind the loads on wide cores.
  for (; i + 64 <= len; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v0, nibble)),
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(v0, 4), nibble)));
    const __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v1, nibble)),
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(v1, 4), nibble)));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d0, p0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, p1));
  }
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i product = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v, nibble)),
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(v, 4), nibble)));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, product));
  }
  if (i < len) {
    MulAddRowSsse3(c, src + i, dst + i, len - i);
  }
}

__attribute__((target("avx2"))) void MulRowAvx2(uint8_t c, const uint8_t* src,
                                                uint8_t* dst, size_t len) {
  if (len == 0) {
    return;
  }
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    std::memmove(dst, src, len);
    return;
  }
  const SplitTables& tables = split_tables();
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.lo[c])));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tables.hi[c])));
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(_mm256_shuffle_epi8(tlo, _mm256_and_si256(v, nibble)),
                         _mm256_shuffle_epi8(
                             thi, _mm256_and_si256(_mm256_srli_epi64(v, 4), nibble))));
  }
  if (i < len) {
    MulRowSsse3(c, src + i, dst + i, len - i);
  }
}

#endif  // CYRUS_GALOIS_X86

// --- Kernel tables and dispatch ---------------------------------------------

const GaloisKernels kScalarKernels = {
    GaloisKernelKind::kScalar, "scalar", MulAddRowScalar, MulRowScalar,
    EncodeBlockWith<MulAddRowScalar>,
};

#if CYRUS_GALOIS_X86
const GaloisKernels kSsse3Kernels = {
    GaloisKernelKind::kSsse3, "ssse3", MulAddRowSsse3, MulRowSsse3,
    EncodeBlockWith<MulAddRowSsse3>,
};
const GaloisKernels kAvx2Kernels = {
    GaloisKernelKind::kAvx2, "avx2", MulAddRowAvx2, MulRowAvx2,
    EncodeBlockWith<MulAddRowAvx2>,
};
#endif

std::atomic<const GaloisKernels*> g_active{nullptr};

// One gauge per kernel, 1 on the active one - so a scrape always shows
// which code path the codec is running.
void PublishKernelGauge(const GaloisKernels& active) {
  static const char* const kNames[] = {"scalar", "ssse3", "avx2"};
  for (const char* name : kNames) {
    obs::MetricsRegistry::Default()
        .GetGauge("cyrus_codec_kernel_active", {{"kernel", name}},
                  "1 on the GF(2^8) kernel selected at dispatch, 0 otherwise")
        ->Set(name == std::string_view(active.name) ? 1.0 : 0.0);
  }
}

}  // namespace

bool GaloisKernelSupported(GaloisKernelKind kind) {
  switch (kind) {
    case GaloisKernelKind::kScalar:
      return true;
    case GaloisKernelKind::kSsse3:
#if CYRUS_GALOIS_X86
      __builtin_cpu_init();
      return __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case GaloisKernelKind::kAvx2:
#if CYRUS_GALOIS_X86
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const GaloisKernels& ScalarGaloisKernels() { return kScalarKernels; }

const GaloisKernels* GetGaloisKernels(GaloisKernelKind kind) {
  if (!GaloisKernelSupported(kind)) {
    return nullptr;
  }
  switch (kind) {
    case GaloisKernelKind::kScalar:
      return &kScalarKernels;
#if CYRUS_GALOIS_X86
    case GaloisKernelKind::kSsse3:
      return &kSsse3Kernels;
    case GaloisKernelKind::kAvx2:
      return &kAvx2Kernels;
#else
    default:
      break;
#endif
  }
  return nullptr;
}

const GaloisKernels& SelectGaloisKernels(std::string_view name) {
  if (name == "scalar") {
    return kScalarKernels;
  }
  if (name == "ssse3") {
    if (const GaloisKernels* k = GetGaloisKernels(GaloisKernelKind::kSsse3)) {
      return *k;
    }
    return kScalarKernels;
  }
  // "avx2", empty, and unknown names all resolve to the widest supported
  // kernel (for "avx2" that ladder is exactly the clean fallback).
  if (const GaloisKernels* k = GetGaloisKernels(GaloisKernelKind::kAvx2)) {
    return *k;
  }
  if (const GaloisKernels* k = GetGaloisKernels(GaloisKernelKind::kSsse3)) {
    return *k;
  }
  return kScalarKernels;
}

const GaloisKernels& ActiveGaloisKernels() {
  const GaloisKernels* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) {
    return *active;
  }
  const char* env = std::getenv("CYRUS_CODEC_KERNEL");
  const GaloisKernels& picked = SelectGaloisKernels(env != nullptr ? env : "");
  const GaloisKernels* expected = nullptr;
  if (g_active.compare_exchange_strong(expected, &picked,
                                       std::memory_order_acq_rel)) {
    PublishKernelGauge(picked);
    return picked;
  }
  return *expected;  // another thread won the race
}

void SetActiveGaloisKernelsForTest(const GaloisKernels* kernels) {
  g_active.store(kernels, std::memory_order_release);
  if (kernels != nullptr) {
    PublishKernelGauge(*kernels);
  }
}

}  // namespace cyrus
