// Runtime-dispatched GF(2^8) row kernels: the inner loops of RS coding.
//
// The scalar log/exp-table loop in galois.cc moves ~200 MB/s; the SSSE3 and
// AVX2 kernels here use the split-table method (Plank et al., "Screaming
// Fast Galois Field Arithmetic Using Intel SIMD Instructions", FAST'13; the
// same technique ISA-L ships): for a fixed multiplier c, precompute the 16
// products c*v for each low nibble v and each high nibble v<<4, then one
// pshufb per nibble turns 16 (SSSE3) or 32 (AVX2) byte multiplies into two
// table shuffles and a XOR - multiple GB/s on one core.
//
// Dispatch happens once per process: CPUID picks the widest supported
// kernel, overridable with CYRUS_CODEC_KERNEL=scalar|ssse3|avx2 (an
// unsupported or unknown request falls back to the best the CPU has). The
// scalar kernel is always available and is the correctness oracle: every
// SIMD path is cross-checked byte-for-byte against it in
// codec_property_test's differential battery.
#ifndef SRC_RS_GALOIS_KERNELS_H_
#define SRC_RS_GALOIS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cyrus {

enum class GaloisKernelKind { kScalar, kSsse3, kAvx2 };

// One kernel implementation. All functions accept len == 0 and arbitrary
// (mis)alignment of src/dst; spans must not overlap.
struct GaloisKernels {
  GaloisKernelKind kind;
  const char* name;  // "scalar" | "ssse3" | "avx2"

  // dst[i] ^= c * src[i] for i in [0, len): the RS encode/decode inner loop.
  void (*mul_add_row)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len);

  // dst[i] = c * src[i].
  void (*mul_row)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len);

  // Fused multi-row encode: dsts[r][i] ^= coeffs[r] * src[i] for every
  // r in [0, rows). Walks src in L1-sized strips so one load of the source
  // feeds all output rows (the cache-blocking the matrix loop relies on).
  void (*encode_block)(const uint8_t* coeffs, size_t rows, const uint8_t* src,
                       size_t len, uint8_t* const* dsts);
};

// Whether this CPU can run `kind` (kScalar is always true).
bool GaloisKernelSupported(GaloisKernelKind kind);

// The always-available scalar reference kernel.
const GaloisKernels& ScalarGaloisKernels();

// The kernel table for `kind`, or nullptr if the CPU lacks the ISA.
const GaloisKernels* GetGaloisKernels(GaloisKernelKind kind);

// Resolves a kernel request by name. "scalar" always honors the request;
// "ssse3"/"avx2" fall back down the ladder (avx2 -> ssse3 -> scalar) when
// unsupported; empty or unknown names pick the widest supported kernel.
const GaloisKernels& SelectGaloisKernels(std::string_view name);

// The process-wide active kernel, selected on first use from the
// CYRUS_CODEC_KERNEL environment variable and CPUID. Lock-free to read;
// also publishes the cyrus_codec_kernel_active{kernel=...} gauge.
const GaloisKernels& ActiveGaloisKernels();

// Test hook: forces the active kernel (nullptr re-runs startup selection on
// the next ActiveGaloisKernels() call). Not for production use - swapping
// kernels mid-encode is safe for correctness (all kernels agree bytewise)
// but makes throughput numbers meaningless.
void SetActiveGaloisKernelsForTest(const GaloisKernels* kernels);

}  // namespace cyrus

#endif  // SRC_RS_GALOIS_KERNELS_H_
