#include "src/rs/matrix.h"

#include <cassert>

#include "src/rs/galois.h"
#include "src/util/strings.h"

namespace cyrus {

GfMatrix GfMatrix::Identity(size_t n) {
  GfMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.Set(i, i, 1);
  }
  return m;
}

GfMatrix GfMatrix::Vandermonde(const std::vector<uint8_t>& points, size_t cols) {
  GfMatrix m(points.size(), cols);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.Set(i, j, Galois::Pow(points[i], static_cast<unsigned>(j)));
    }
  }
  return m;
}

GfMatrix GfMatrix::Multiply(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const uint8_t a = At(i, k);
      if (a == 0) {
        continue;
      }
      for (size_t j = 0; j < other.cols_; ++j) {
        out.Set(i, j, Galois::Add(out.At(i, j), Galois::Mul(a, other.At(k, j))));
      }
    }
  }
  return out;
}

GfMatrix GfMatrix::SelectRows(const std::vector<size_t>& row_indices) const {
  GfMatrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    assert(row_indices[i] < rows_);
    std::copy(Row(row_indices[i]), Row(row_indices[i]) + cols_, out.Row(i));
  }
  return out;
}

void GfMatrix::ScaleColumn(size_t c, uint8_t factor) {
  assert(factor != 0);
  for (size_t r = 0; r < rows_; ++r) {
    Set(r, c, Galois::Mul(At(r, c), factor));
  }
}

Result<GfMatrix> GfMatrix::Inverted() const {
  if (rows_ != cols_) {
    return InvalidArgumentError("cannot invert a non-square matrix");
  }
  const size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = Identity(n);

  for (size_t col = 0; col < n; ++col) {
    // Find a pivot in this column.
    size_t pivot = col;
    while (pivot < n && work.At(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return InvalidArgumentError("matrix is singular");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(work.Row(col)[j], work.Row(pivot)[j]);
        std::swap(inv.Row(col)[j], inv.Row(pivot)[j]);
      }
    }
    // Normalize the pivot row.
    const uint8_t inv_pivot = Galois::Inverse(work.At(col, col));
    Galois::MulRow(inv_pivot, ByteSpan(work.Row(col), n), MutableByteSpan(work.Row(col), n));
    Galois::MulRow(inv_pivot, ByteSpan(inv.Row(col), n), MutableByteSpan(inv.Row(col), n));
    // Eliminate the column from all other rows.
    for (size_t r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const uint8_t factor = work.At(r, col);
      if (factor != 0) {
        Galois::MulAddRow(factor, ByteSpan(work.Row(col), n), MutableByteSpan(work.Row(r), n));
        Galois::MulAddRow(factor, ByteSpan(inv.Row(col), n), MutableByteSpan(inv.Row(r), n));
      }
    }
  }
  return inv;
}

bool GfMatrix::IsIdentity() const {
  if (rows_ != cols_) {
    return false;
  }
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      if (At(i, j) != (i == j ? 1 : 0)) {
        return false;
      }
    }
  }
  return true;
}

std::string GfMatrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out += StrCat(static_cast<int>(At(i, j)), j + 1 < cols_ ? " " : "");
    }
    out += "\n";
  }
  return out;
}

}  // namespace cyrus
