// Dense matrices over GF(2^8) for Reed-Solomon dispersal and decoding.
#ifndef SRC_RS_MATRIX_H_
#define SRC_RS_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace cyrus {

class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static GfMatrix Identity(size_t n);

  // Vandermonde matrix: entry (i, j) = points[i]^j, for j in [0, cols).
  // Any `cols` rows with distinct points form an invertible submatrix.
  static GfMatrix Vandermonde(const std::vector<uint8_t>& points, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  void Set(size_t r, size_t c, uint8_t v) { data_[r * cols_ + c] = v; }

  // Pointer to the start of row r (cols() contiguous bytes).
  const uint8_t* Row(size_t r) const { return data_.data() + r * cols_; }
  uint8_t* Row(size_t r) { return data_.data() + r * cols_; }

  GfMatrix Multiply(const GfMatrix& other) const;

  // Returns the sub-matrix made of the given rows, in order.
  GfMatrix SelectRows(const std::vector<size_t>& row_indices) const;

  // Scales column c by a nonzero factor (keyed column mixing).
  void ScaleColumn(size_t c, uint8_t factor);

  // Gauss-Jordan inverse. Fails if the matrix is not square or is singular.
  Result<GfMatrix> Inverted() const;

  bool IsIdentity() const;

  std::string ToString() const;

  friend bool operator==(const GfMatrix& a, const GfMatrix& b) = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace cyrus

#endif  // SRC_RS_MATRIX_H_
