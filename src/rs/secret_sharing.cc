#include "src/rs/secret_sharing.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/naming.h"
#include "src/obs/metrics.h"
#include "src/rs/galois.h"
#include "src/rs/galois_kernels.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Cache block for the matrix application: the encode walks the chunk in
// strips of this many share bytes, producing every output row for a strip
// before moving on, so the strip (plus one output strip per row) lives in
// L1/L2 across the whole column pass instead of being re-fetched t times.
constexpr size_t kCodecBlockBytes = 32 * 1024;

obs::Counter* EncodeBytesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_codec_encode_bytes_total", {},
      "Chunk bytes pushed through the RS encoder");
  return counter;
}

obs::Counter* DecodeBytesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_codec_decode_bytes_total", {},
      "Chunk bytes reconstructed by the RS decoder");
  return counter;
}

}  // namespace

size_t ShareSize(size_t chunk_size, uint32_t t) {
  assert(t > 0);
  return (chunk_size + t - 1) / t;
}

Result<SecretSharingCodec> SecretSharingCodec::Create(std::string_view key_string,
                                                      uint32_t t, uint32_t n) {
  if (t < 1 || n < t || n > 255) {
    return InvalidArgumentError(
        StrCat("secret sharing requires 1 <= t <= n <= 255, got t=", t, " n=", n));
  }
  // Keyed Vandermonde rows on distinct nonzero points...
  const std::vector<uint8_t> points = DeriveEvaluationPoints(key_string, n);
  GfMatrix matrix = GfMatrix::Vandermonde(points, t);
  // ...then keyed column mixing. Scaling column j by a nonzero g_j keeps
  // every t-row submatrix invertible (det scales by prod(g_j) != 0) while
  // making the matrix itself depend on the key beyond the points.
  const std::vector<uint8_t> mix = DeriveDispersalVector(key_string, t);
  for (uint32_t j = 0; j < t; ++j) {
    matrix.ScaleColumn(j, mix[j]);
  }
  return SecretSharingCodec(t, n, std::move(matrix));
}

Result<std::vector<Share>> SecretSharingCodec::Encode(ByteSpan chunk) const {
  const size_t share_len = ShareSize(chunk.size(), t_);
  std::vector<Share> shares(n_);
  std::vector<MutableByteSpan> dsts(n_);
  for (uint32_t i = 0; i < n_; ++i) {
    shares[i].index = i;
    shares[i].data.resize(share_len);
    dsts[i] = MutableByteSpan(shares[i].data.data(), share_len);
  }
  CYRUS_RETURN_IF_ERROR(EncodeInto(chunk, dsts));
  return shares;
}

Status SecretSharingCodec::EncodeInto(ByteSpan chunk,
                                      std::span<const MutableByteSpan> dsts) const {
  const size_t share_len = ShareSize(chunk.size(), t_);
  if (dsts.size() != n_) {
    return InvalidArgumentError(
        StrCat("EncodeInto needs ", n_, " destinations, got ", dsts.size()));
  }
  for (const MutableByteSpan& dst : dsts) {
    if (dst.size() != share_len) {
      return InvalidArgumentError(StrCat("destination size ", dst.size(),
                                         " does not match share size ", share_len));
    }
  }
  if (share_len == 0) {
    return OkStatus();
  }
  EncodeBytesCounter()->Increment(chunk.size());

  const GaloisKernels& kernels = ActiveGaloisKernels();
  // Column-major copy of the dispersal matrix: the fused kernel consumes
  // one column (all n coefficients of source row j) contiguously.
  std::vector<uint8_t> columns(static_cast<size_t>(t_) * n_);
  for (uint32_t j = 0; j < t_; ++j) {
    for (uint32_t i = 0; i < n_; ++i) {
      columns[static_cast<size_t>(j) * n_ + i] = matrix_.At(i, j);
    }
  }

  // Data row j is the contiguous slice chunk[j*L, (j+1)*L), zero-padded;
  // share_i += M[i][j] * row_j. Blocked: for each strip of the share, every
  // present source row is applied to all n outputs before the strip
  // advances (row lengths are non-increasing, so a row that ends before
  // this strip ends them all). Row 0 always spans the full share (L =
  // ceil(size/t) <= size), so it *initializes* each output strip with
  // mul_row instead of accumulating into a memset: the shares make exactly
  // one write pass through memory, and rows j >= 1 hit strips that are
  // still cache-hot from that first pass. Padded tails past a short row's
  // end would only ever receive zero contributions, so skipping them leaves
  // the row-0 product in place - exactly the right bytes.
  std::vector<uint8_t*> dst_ptrs(n_);
  for (size_t block = 0; block < share_len; block += kCodecBlockBytes) {
    const size_t strip = std::min(kCodecBlockBytes, share_len - block);
    for (uint32_t i = 0; i < n_; ++i) {
      dst_ptrs[i] = dsts[i].data() + block;
      kernels.mul_row(columns[i], chunk.data() + block, dst_ptrs[i], strip);
    }
    for (uint32_t j = 1; j < t_; ++j) {
      const size_t begin = static_cast<size_t>(j) * share_len;
      if (begin >= chunk.size()) {
        break;  // fully padded rows contribute nothing
      }
      const size_t row_len = std::min(share_len, chunk.size() - begin);
      if (block >= row_len) {
        break;
      }
      const size_t len = std::min(kCodecBlockBytes, row_len - block);
      kernels.encode_block(&columns[static_cast<size_t>(j) * n_], n_,
                           chunk.data() + begin + block, len, dst_ptrs.data());
    }
  }
  return OkStatus();
}

Result<Share> SecretSharingCodec::EncodeShare(ByteSpan chunk, uint32_t index) const {
  Share share;
  share.index = index;
  share.data.resize(ShareSize(chunk.size(), t_));
  CYRUS_RETURN_IF_ERROR(EncodeShareInto(
      chunk, index, MutableByteSpan(share.data.data(), share.data.size())));
  return share;
}

Status SecretSharingCodec::EncodeShareInto(ByteSpan chunk, uint32_t index,
                                           MutableByteSpan dst) const {
  if (index >= n_) {
    return InvalidArgumentError(StrCat("share index ", index, " out of range for n=", n_));
  }
  const size_t share_len = ShareSize(chunk.size(), t_);
  if (dst.size() != share_len) {
    return InvalidArgumentError(StrCat("destination size ", dst.size(),
                                       " does not match share size ", share_len));
  }
  if (share_len == 0) {
    return OkStatus();
  }
  // Row 0 always spans the full share, so it seeds the destination with
  // MulRow (no memset pass); later, shorter rows accumulate on top and
  // their padded tails correctly keep the earlier products.
  Galois::MulRow(matrix_.At(index, 0), chunk.subspan(0, share_len),
                 MutableByteSpan(dst.data(), share_len));
  for (uint32_t j = 1; j < t_; ++j) {
    const size_t begin = static_cast<size_t>(j) * share_len;
    if (begin >= chunk.size()) {
      break;
    }
    const size_t len = std::min(share_len, chunk.size() - begin);
    Galois::MulAddRow(matrix_.At(index, j), chunk.subspan(begin, len),
                      MutableByteSpan(dst.data(), len));
  }
  return OkStatus();
}

Result<Bytes> SecretSharingCodec::Decode(const std::vector<Share>& shares,
                                         size_t chunk_size) const {
  Bytes chunk(chunk_size, 0);
  CYRUS_RETURN_IF_ERROR(DecodeInto(shares, MutableByteSpan(chunk)));
  return chunk;
}

Status SecretSharingCodec::DecodeInto(const std::vector<Share>& shares,
                                      MutableByteSpan chunk) const {
  const size_t chunk_size = chunk.size();
  // Collect the first t distinct, in-range share indices.
  std::vector<size_t> row_indices;
  std::vector<const Bytes*> inputs;
  for (const Share& share : shares) {
    if (share.index >= n_) {
      return InvalidArgumentError(
          StrCat("share index ", share.index, " out of range for n=", n_));
    }
    if (std::find(row_indices.begin(), row_indices.end(), share.index) !=
        row_indices.end()) {
      continue;  // duplicate index: ignore
    }
    row_indices.push_back(share.index);
    inputs.push_back(&share.data);
    if (row_indices.size() == t_) {
      break;
    }
  }
  if (row_indices.size() < t_) {
    return DataLossError(StrCat("need ", t_, " distinct shares to decode, have ",
                                row_indices.size()));
  }

  const size_t share_len = ShareSize(chunk_size, t_);
  for (const Bytes* input : inputs) {
    if (input->size() != share_len) {
      return InvalidArgumentError(StrCat("share size ", input->size(),
                                         " does not match expected ", share_len));
    }
  }

  if (chunk_size == 0) {
    return OkStatus();
  }
  DecodeBytesCounter()->Increment(chunk_size);

  CYRUS_ASSIGN_OR_RETURN(GfMatrix decode, matrix_.SelectRows(row_indices).Inverted());

  // Row j of the original data = sum_k decode[j][k] * share_k; write it
  // directly into its slice of the output, trimming the padded tail. The
  // strip loop keeps the t input strips hot in cache across every output
  // row instead of streaming each full share t times (row lengths are
  // non-increasing, so a row ending before this strip ends them all). The
  // k = 0 term seeds each output strip with mul_row, so the chunk is
  // written in a single pass with no memset prepass.
  const GaloisKernels& kernels = ActiveGaloisKernels();
  for (size_t block = 0; block < share_len; block += kCodecBlockBytes) {
    for (uint32_t j = 0; j < t_; ++j) {
      const size_t begin = static_cast<size_t>(j) * share_len;
      if (begin >= chunk_size) {
        break;
      }
      const size_t row_len = std::min(share_len, chunk_size - begin);
      if (block >= row_len) {
        break;
      }
      const size_t len = std::min(kCodecBlockBytes, row_len - block);
      uint8_t* out = chunk.data() + begin + block;
      kernels.mul_row(decode.At(j, 0), inputs[0]->data() + block, out, len);
      for (uint32_t k = 1; k < t_; ++k) {
        kernels.mul_add_row(decode.At(j, k), inputs[k]->data() + block, out, len);
      }
    }
  }
  return OkStatus();
}

Result<SecretSharingCodec::ErrorDecodeResult>
SecretSharingCodec::DecodeWithErrorCorrection(const std::vector<Share>& shares,
                                              size_t chunk_size) const {
  // Deduplicate by index. Wrong-sized shares are plainly damaged: record
  // them as corrupted and keep going with the rest.
  std::vector<const Share*> inputs;
  std::vector<uint32_t> size_corrupted;
  {
    std::vector<uint32_t> seen;
    const size_t share_len = ShareSize(chunk_size, t_);
    for (const Share& share : shares) {
      if (share.index >= n_) {
        return InvalidArgumentError(
            StrCat("share index ", share.index, " out of range for n=", n_));
      }
      if (std::find(seen.begin(), seen.end(), share.index) != seen.end()) {
        continue;
      }
      seen.push_back(share.index);
      if (share.data.size() != share_len) {
        size_corrupted.push_back(share.index);
        continue;
      }
      inputs.push_back(&share);
    }
  }
  const size_t m = inputs.size();
  if (m < t_) {
    return DataLossError(
        StrCat("need ", t_, " distinct shares to decode, have ", m));
  }
  const size_t e_max = (m - t_) / 2;

  // Enumerate t-subsets in lexicographic order; a correct subset's decode
  // re-encodes to agree with every uncorrupted share (>= m - e_max inputs).
  std::vector<size_t> pick(t_);
  for (size_t k = 0; k < t_; ++k) {
    pick[k] = k;
  }
  size_t combinations = 1;
  for (size_t k = 0; k < t_; ++k) {
    combinations = combinations * (m - k) / (k + 1);
    if (combinations > 20000) {
      return UnimplementedError(
          "error-correcting decode supports small n only (C(shares, t) too large)");
    }
  }

  for (;;) {
    std::vector<Share> subset;
    for (size_t k : pick) {
      subset.push_back(*inputs[k]);
    }
    auto chunk = Decode(subset, chunk_size);
    if (chunk.ok()) {
      // Validate by re-encoding and counting agreeing input shares.
      auto reencoded = Encode(*chunk);
      if (reencoded.ok()) {
        std::vector<uint32_t> corrupted;
        size_t agree = 0;
        for (const Share* input : inputs) {
          if ((*reencoded)[input->index].data == input->data) {
            ++agree;
          } else {
            corrupted.push_back(input->index);
          }
        }
        if (agree >= m - e_max) {
          ErrorDecodeResult result;
          result.chunk = *std::move(chunk);
          result.corrupted_indices = std::move(corrupted);
          result.corrupted_indices.insert(result.corrupted_indices.end(),
                                          size_corrupted.begin(), size_corrupted.end());
          return result;
        }
      }
    }
    // Next lexicographic t-subset of [0, m).
    size_t k = t_;
    while (k > 0 && pick[k - 1] == m - t_ + (k - 1)) {
      --k;
    }
    if (k == 0) {
      break;
    }
    ++pick[k - 1];
    for (size_t j = k; j < t_; ++j) {
      pick[j] = pick[j - 1] + 1;
    }
  }
  return DataLossError(StrCat("no consistent decode: more than ", e_max,
                              " of ", m, " shares are corrupted"));
}

}  // namespace cyrus
