// (t, n) secret sharing via a keyed, non-systematic Reed-Solomon erasure
// code (paper §5.1, Figure 5).
//
// A chunk of B bytes is split into t data rows of ceil(B / t) bytes each
// (zero-padded). The n shares are the rows of M * D, where D stacks the t
// data rows and M is an n x t dispersal matrix. M is non-systematic: no
// share contains plaintext bytes. M is keyed: its evaluation points and a
// per-column mixing vector are derived from the user's key string, so
// decoding requires both t shares and the key (paper §7.1).
//
// Any t of the n shares reconstruct the chunk (the corresponding t rows of
// M form an invertible matrix because the evaluation points are distinct).
#ifndef SRC_RS_SECRET_SHARING_H_
#define SRC_RS_SECRET_SHARING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/rs/matrix.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

// One share: the erasure-code row index plus the coded bytes. The index is
// needed to select the decoding rows; on the wire it is hidden inside the
// share *name* (src/crypto/naming.h), never stored in plaintext at a CSP.
struct Share {
  uint32_t index = 0;
  Bytes data;
};

// Size of each share for a chunk of `chunk_size` bytes under parameter t.
// Shares are ~chunk/t, so total stored data is ~(n/t) * chunk (paper §3.2).
size_t ShareSize(size_t chunk_size, uint32_t t);

class SecretSharingCodec {
 public:
  // Requires 1 <= t <= n <= 255. The key string seeds the dispersal matrix.
  static Result<SecretSharingCodec> Create(std::string_view key_string, uint32_t t,
                                           uint32_t n);

  uint32_t t() const { return t_; }
  uint32_t n() const { return n_; }

  // Encodes a chunk into n shares of ShareSize(chunk.size(), t) bytes each.
  // The chunk may be empty (shares are then empty too).
  Result<std::vector<Share>> Encode(ByteSpan chunk) const;

  // Encodes into caller-provided destinations - one span per share index,
  // each exactly ShareSize(chunk.size(), t) bytes. This is the zero-copy
  // entry the transfer path uses: shares are produced directly inside the
  // pooled buffers the connectors upload (src/util/buffer_pool.h), and the
  // matrix application is cache-blocked so the chunk streams through L1
  // once per block instead of once per (row, share) pair. Destinations are
  // zeroed first and must not alias the chunk or each other.
  Status EncodeInto(ByteSpan chunk, std::span<const MutableByteSpan> dsts) const;

  // Single-share variant of EncodeInto (index < n, dst exactly
  // ShareSize(chunk.size(), t) bytes) - the repair engine re-encodes lost
  // shares straight into pooled upload buffers with this.
  Status EncodeShareInto(ByteSpan chunk, uint32_t index, MutableByteSpan dst) const;

  // Regenerates the single share with the given index (< n) without
  // materializing the others - used for lazy share migration (paper §5.5):
  // after a CSP disappears, the client rebuilds just the lost share from
  // the reconstructed chunk.
  Result<Share> EncodeShare(ByteSpan chunk, uint32_t index) const;

  // Reconstructs the original chunk from any >= t shares. `chunk_size` is
  // the original length (tracked in the ChunkMap); it trims the padding.
  // Fails with kDataLoss if fewer than t distinct shares are given, and
  // with kInvalidArgument on inconsistent share sizes or bad indices.
  Result<Bytes> Decode(const std::vector<Share>& shares, size_t chunk_size) const;

  // Decode variant writing the reconstructed chunk into a caller-provided
  // buffer of exactly the original chunk size (Get decodes every chunk
  // straight into its slice of the assembled file, skipping the per-chunk
  // allocation and the assemble copy).
  Status DecodeInto(const std::vector<Share>& shares, MutableByteSpan chunk) const;

  // Error-correcting decode (paper §5.1 footnote 9: "R-S coding ... can
  // recover a chunk's data even if there are errors in the t shares").
  // Tolerates up to floor((shares - t) / 2) *corrupted* shares (bit rot, a
  // tampering provider) without knowing which ones: candidate t-subsets
  // are decoded and validated by re-encoding against the remaining shares;
  // a decode agreeing with >= shares - e_max inputs is the unique codeword
  // within the code's error-correction radius (the same guarantee
  // Berlekamp-Welch gives, by exhaustive search - fine for the paper's
  // n <= 11 operating range). Reports which shares were corrupted so the
  // caller can repair them.
  struct ErrorDecodeResult {
    Bytes chunk;
    std::vector<uint32_t> corrupted_indices;
  };
  Result<ErrorDecodeResult> DecodeWithErrorCorrection(const std::vector<Share>& shares,
                                                      size_t chunk_size) const;

  // The n x t dispersal matrix (exposed for tests and documentation).
  const GfMatrix& dispersal_matrix() const { return matrix_; }

 private:
  SecretSharingCodec(uint32_t t, uint32_t n, GfMatrix matrix)
      : t_(t), n_(n), matrix_(std::move(matrix)) {}

  uint32_t t_;
  uint32_t n_;
  GfMatrix matrix_;
};

}  // namespace cyrus

#endif  // SRC_RS_SECRET_SHARING_H_
