#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace cyrus {

void EventQueue::ScheduleAt(double when, Callback fn) {
  assert(when >= now_);
  queue_.push(Event{when, next_sequence_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(double delay, Callback fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (queue_.empty()) {
    return false;
  }
  // Moving out of the priority queue requires a const_cast dance; copy the
  // small fields and move the callback via a temporary.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

void EventQueue::RunUntilIdle() {
  while (RunNext()) {
  }
}

void EventQueue::RunUntil(double deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    RunNext();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace cyrus
