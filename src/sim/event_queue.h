// A minimal discrete-event engine with a virtual clock.
//
// Multi-client scenarios (periodic metadata sync, conflicting uploads,
// outage schedules) run against virtual time so tests and benchmarks are
// deterministic and fast regardless of the simulated durations.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cyrus {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  // Schedules `fn` at absolute virtual time `when` (>= now). Events at equal
  // times fire in scheduling order (stable).
  void ScheduleAt(double when, Callback fn);

  // Schedules `fn` `delay` seconds from now.
  void ScheduleAfter(double delay, Callback fn);

  // Runs the earliest pending event; returns false when idle.
  bool RunNext();

  // Runs events until the queue drains.
  void RunUntilIdle();

  // Runs events with time <= deadline, then sets now() to the deadline.
  void RunUntil(double deadline);

  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double when;
    uint64_t sequence;  // tie-break: stable FIFO at equal times
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cyrus

#endif  // SRC_SIM_EVENT_QUEUE_H_
