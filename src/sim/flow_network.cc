#include "src/sim/flow_network.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Rate assigned to flows that cross no finite-capacity link.
constexpr double kUnlimitedRate = 1e15;
constexpr double kTimeEps = 1e-12;

struct ActiveFlow {
  size_t index;            // into the input vector
  double remaining_bytes;
  double rate = 0.0;
};

// Max-min fair allocation by progressive filling: repeatedly saturate the
// tightest link, freeze its flows at the fair share, remove them, repeat.
void ComputeMaxMinRates(const std::vector<SimLink>& links,
                        const std::vector<FlowSpec>& specs,
                        std::vector<ActiveFlow>& active) {
  const size_t L = links.size();
  std::vector<double> residual(L);
  std::vector<int> count(L, 0);
  for (size_t l = 0; l < L; ++l) {
    residual[l] = links[l].capacity > 0.0 ? links[l].capacity : kInf;
  }
  std::vector<bool> frozen(active.size(), false);
  for (size_t f = 0; f < active.size(); ++f) {
    for (int l : specs[active[f].index].links) {
      ++count[l];
    }
  }

  size_t remaining = active.size();
  while (remaining > 0) {
    // Tightest link among those still carrying unfrozen flows.
    double best_fair = kInf;
    int best_link = -1;
    for (size_t l = 0; l < L; ++l) {
      if (count[l] > 0 && residual[l] < kInf) {
        const double fair = residual[l] / count[l];
        if (fair < best_fair) {
          best_fair = fair;
          best_link = static_cast<int>(l);
        }
      }
    }
    if (best_link < 0) {
      // Every remaining flow is unconstrained.
      for (size_t f = 0; f < active.size(); ++f) {
        if (!frozen[f]) {
          active[f].rate = kUnlimitedRate;
        }
      }
      return;
    }
    // Freeze all unfrozen flows crossing the bottleneck at the fair share.
    for (size_t f = 0; f < active.size(); ++f) {
      if (frozen[f]) {
        continue;
      }
      const auto& flow_links = specs[active[f].index].links;
      if (std::find(flow_links.begin(), flow_links.end(), best_link) ==
          flow_links.end()) {
        continue;
      }
      active[f].rate = best_fair;
      frozen[f] = true;
      --remaining;
      for (int l : flow_links) {
        residual[l] -= best_fair;
        --count[l];
      }
    }
    // Numerical guard: the bottleneck must now be drained.
    residual[best_link] = std::max(residual[best_link], 0.0);
  }
}

}  // namespace

int FlowNetwork::AddLink(double capacity_bytes_per_sec, std::string name) {
  links_.push_back(SimLink{capacity_bytes_per_sec, std::move(name)});
  return static_cast<int>(links_.size()) - 1;
}

Result<std::vector<FlowResult>> FlowNetwork::Run(
    const std::vector<FlowSpec>& flows) const {
  for (size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].bytes < 0.0 || flows[i].start_time < 0.0) {
      return InvalidArgumentError(StrCat("flow ", i, " has negative size or start"));
    }
    for (int l : flows[i].links) {
      if (l < 0 || static_cast<size_t>(l) >= links_.size()) {
        return InvalidArgumentError(StrCat("flow ", i, " references unknown link ", l));
      }
    }
  }

  std::vector<FlowResult> results(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    results[i].tag = flows[i].tag;
    results[i].start_time = flows[i].start_time;
    results[i].completion_time = flows[i].start_time;  // adjusted below
  }

  // Arrival order.
  std::vector<size_t> pending(flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    pending[i] = i;
  }
  std::stable_sort(pending.begin(), pending.end(), [&](size_t a, size_t b) {
    return flows[a].start_time < flows[b].start_time;
  });
  size_t next_arrival = 0;

  std::vector<ActiveFlow> active;
  double now = 0.0;

  while (next_arrival < pending.size() || !active.empty()) {
    // Admit flows that have arrived.
    while (next_arrival < pending.size() &&
           flows[pending[next_arrival]].start_time <= now + kTimeEps) {
      const size_t idx = pending[next_arrival++];
      if (flows[idx].bytes <= 0.0) {
        results[idx].completion_time = flows[idx].start_time;
        continue;  // empty flows complete instantly
      }
      active.push_back(ActiveFlow{idx, flows[idx].bytes, 0.0});
    }
    if (active.empty()) {
      if (next_arrival < pending.size()) {
        now = flows[pending[next_arrival]].start_time;
        continue;
      }
      break;
    }

    ComputeMaxMinRates(links_, flows, active);

    // Earliest next event: a completion or the next arrival.
    double next_event = kInf;
    for (const ActiveFlow& f : active) {
      assert(f.rate > 0.0);
      next_event = std::min(next_event, now + f.remaining_bytes / f.rate);
    }
    if (next_arrival < pending.size()) {
      next_event = std::min(next_event, flows[pending[next_arrival]].start_time);
    }

    // Advance and drain.
    const double dt = next_event - now;
    now = next_event;
    for (auto it = active.begin(); it != active.end();) {
      it->remaining_bytes -= it->rate * dt;
      if (it->remaining_bytes <= it->rate * kTimeEps + 1e-6) {
        results[it->index].completion_time = now;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (size_t i = 0; i < flows.size(); ++i) {
    const double duration = results[i].completion_time - results[i].start_time;
    results[i].mean_rate = duration > 0.0 ? flows[i].bytes / duration : 0.0;
  }
  return results;
}

}  // namespace cyrus
