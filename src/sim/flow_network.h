// Fluid-model network transfer simulation with max-min fair sharing.
//
// This is the offline stand-in for the paper's tc/netem testbed (§7.2):
// parallel share transfers compete for capacity on shared resources (the
// client's uplink or downlink, each CSP's ingress/egress rate cap). At any
// instant, active flows get the max-min fair ("progressive filling") rate
// allocation, the standard fluid approximation of competing TCP flows. The
// simulator advances from flow event to flow event (arrival or completion),
// recomputing rates in between - completion times are exact under the
// fluid model, independent of wall-clock time.
#ifndef SRC_SIM_FLOW_NETWORK_H_
#define SRC_SIM_FLOW_NETWORK_H_

#include <string>
#include <vector>

#include "src/util/result.h"

namespace cyrus {

// A capacity-limited resource (client NIC direction or per-CSP rate cap).
struct SimLink {
  double capacity = 0.0;  // bytes/second; <= 0 means unlimited
  std::string name;
};

struct FlowSpec {
  double bytes = 0.0;       // payload to move
  std::vector<int> links;   // resources this flow occupies
  double start_time = 0.0;  // seconds (e.g. request issue time + RTT)
  int64_t tag = 0;          // caller-defined id, echoed in the result
};

struct FlowResult {
  int64_t tag = 0;
  double start_time = 0.0;
  double completion_time = 0.0;
  double mean_rate = 0.0;  // bytes / (completion - start), 0 for empty flows
};

class FlowNetwork {
 public:
  // Returns the link id.
  int AddLink(double capacity_bytes_per_sec, std::string name = "");

  size_t num_links() const { return links_.size(); }
  const SimLink& link(int id) const { return links_[id]; }

  // Simulates all flows to completion; results are in input order.
  // Fails on unknown link ids or negative sizes/times.
  Result<std::vector<FlowResult>> Run(const std::vector<FlowSpec>& flows) const;

 private:
  std::vector<SimLink> links_;
};

}  // namespace cyrus

#endif  // SRC_SIM_FLOW_NETWORK_H_
