#include "src/sim/zipf.h"

#include <algorithm>
#include <cmath>

namespace cyrus {

ZipfGenerator::ZipfGenerator(size_t num_ranks, double skew) {
  if (num_ranks == 0) {
    num_ranks = 1;
  }
  cdf_.resize(num_ranks);
  double total = 0.0;
  for (size_t k = 0; k < num_ranks; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

size_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfGenerator::ProbabilityOf(size_t rank) const {
  if (rank >= cdf_.size()) {
    return 0.0;
  }
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cyrus
