// Zipfian rank sampling for skewed workload generators.
//
// Open-loop soak benchmarks draw "which client fires next" and "which file
// does it touch" from a Zipf(s) distribution over N ranks: rank k is chosen
// with probability proportional to 1/k^s, the classic popularity skew of
// storage traces. The implementation precomputes the normalized CDF once
// (O(N) memory, N up to a few hundred thousand is cheap) and samples by
// binary search, so draws are O(log N), exact, and deterministic for a
// given Rng stream.
#ifndef SRC_SIM_ZIPF_H_
#define SRC_SIM_ZIPF_H_

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace cyrus {

class ZipfGenerator {
 public:
  // `num_ranks` >= 1; `skew` >= 0 (0 degenerates to uniform, ~0.99 matches
  // YCSB's default popularity skew).
  ZipfGenerator(size_t num_ranks, double skew);

  // A rank in [0, num_ranks), rank 0 most popular.
  size_t Next(Rng& rng) const;

  size_t num_ranks() const { return cdf_.size(); }
  // P(rank == k), for tests and load math.
  double ProbabilityOf(size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace cyrus

#endif  // SRC_SIM_ZIPF_H_
