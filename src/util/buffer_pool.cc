#include "src/util/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <new>

#include "src/obs/metrics.h"

namespace cyrus {
namespace {

// Process-wide pool counters (find-or-create, so every pool in the process
// aggregates into one series; the pool hit rate the codec dashboards chart
// is hits / (hits + misses)).
obs::Counter* HitsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_bufpool_hits_total", {}, "Buffer checkouts served from the free list");
  return counter;
}

obs::Counter* MissesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_bufpool_misses_total", {}, "Buffer checkouts that allocated fresh memory");
  return counter;
}

obs::Gauge* FreeBytesGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_bufpool_free_bytes", {}, "Bytes parked in buffer-pool free lists");
  return gauge;
}

}  // namespace

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : pool_(other.pool_), data_(other.data_), capacity_(other.capacity_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
  other.capacity_ = 0;
}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    data_ = other.data_;
    capacity_ = other.capacity_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  return *this;
}

PooledBuffer::~PooledBuffer() { Release(); }

MutableByteSpan PooledBuffer::span(size_t len) const {
  assert(len <= capacity_);
  return MutableByteSpan(data_, len);
}

void PooledBuffer::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Release(data_, capacity_);
  }
  pool_ = nullptr;
  data_ = nullptr;
  capacity_ = 0;
}

BufferPool::BufferPool() : BufferPool(Options{}) {}

BufferPool::BufferPool(Options options) : options_(options) {
  assert(options_.alignment != 0 &&
         (options_.alignment & (options_.alignment - 1)) == 0);
}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(outstanding_ == 0 && "PooledBuffer outlived its BufferPool");
  uint64_t freed = 0;
  for (const FreeBuffer& buffer : free_) {
    freed += buffer.capacity;
    ::operator delete[](buffer.data, std::align_val_t(options_.alignment));
  }
  FreeBytesGauge()->Add(-static_cast<double>(freed));
  free_.clear();
}

PooledBuffer BufferPool::Acquire(size_t min_bytes) {
  const size_t granularity = std::max<size_t>(1, options_.capacity_granularity);
  const size_t want =
      ((std::max<size_t>(min_bytes, 1) + granularity - 1) / granularity) * granularity;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // free_ is capacity-sorted: the first fit is the tightest fit, so big
    // buffers stay parked for the requests that actually need them.
    auto it = std::find_if(free_.begin(), free_.end(), [&](const FreeBuffer& b) {
      return b.capacity >= want;
    });
    if (it != free_.end()) {
      const FreeBuffer buffer = *it;
      free_.erase(it);
      ++hits_;
      ++outstanding_;
      HitsCounter()->Increment();
      FreeBytesGauge()->Add(-static_cast<double>(buffer.capacity));
      return PooledBuffer(this, buffer.data, buffer.capacity);
    }
    ++misses_;
    ++outstanding_;
  }
  MissesCounter()->Increment();
  uint8_t* data = static_cast<uint8_t*>(
      ::operator new[](want, std::align_val_t(options_.alignment)));
  return PooledBuffer(this, data, want);
}

void BufferPool::Release(uint8_t* data, size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(outstanding_ > 0);
    --outstanding_;
    if (free_.size() < options_.max_free_buffers) {
      const auto pos =
          std::lower_bound(free_.begin(), free_.end(), capacity,
                           [](const FreeBuffer& b, size_t cap) { return b.capacity < cap; });
      free_.insert(pos, FreeBuffer{data, capacity});
      FreeBytesGauge()->Add(static_cast<double>(capacity));
      return;
    }
  }
  ::operator delete[](data, std::align_val_t(options_.alignment));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.outstanding = outstanding_;
  stats.free_buffers = free_.size();
  for (const FreeBuffer& buffer : free_) {
    stats.free_bytes += buffer.capacity;
  }
  return stats;
}

}  // namespace cyrus
