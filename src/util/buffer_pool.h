// A thread-safe pool of aligned, reusable byte buffers.
//
// The pipelined transfer engine encodes every chunk into n share buffers,
// uploads them, and throws them away - at window w that is n*w allocations
// plus faults per chunk, all of identical sizes. The pool recycles those
// buffers: Acquire() hands back a released buffer when one is big enough
// (a "hit"), or mints a fresh one (a "miss"). Buffers are aligned to
// Options::alignment (32 bytes by default, one AVX2 vector) so the SIMD
// codec's stores land on aligned lanes, and capacities are rounded up to
// page multiples so buffers recycle across slightly different share sizes.
//
// Ownership rules (see DESIGN.md "buffer-pool ownership"): a PooledBuffer
// is a unique handle - it returns its storage on destruction, must not
// outlive its pool, and the bytes it exposes are only valid while the
// handle lives. The transfer path therefore keeps the handle in the same
// scope as the upload that reads from it; nothing downstream of a
// connector call may retain the span.
#ifndef SRC_UTIL_BUFFER_POOL_H_
#define SRC_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/bytes.h"

namespace cyrus {

class BufferPool;

// Movable RAII handle over one pooled allocation. Default-constructed
// handles are empty (data() == nullptr, capacity() == 0).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }
  explicit operator bool() const { return data_ != nullptr; }

  // The first `len` bytes (len <= capacity()).
  MutableByteSpan span(size_t len) const;

  // Returns the storage to the pool now (also happens on destruction).
  void Release();

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, uint8_t* data, size_t capacity)
      : pool_(pool), data_(data), capacity_(capacity) {}

  BufferPool* pool_ = nullptr;
  uint8_t* data_ = nullptr;
  size_t capacity_ = 0;
};

class BufferPool {
 public:
  struct Options {
    // Buffer alignment in bytes; power of two. 32 = one AVX2 lane.
    size_t alignment = 32;
    // Capacities are rounded up to a multiple of this, so requests of
    // slightly different sizes recycle the same buffers.
    size_t capacity_granularity = 4096;
    // Released buffers retained for reuse; beyond this they are freed.
    // Bounds idle memory to roughly max_free_buffers * largest share size.
    size_t max_free_buffers = 64;
  };

  BufferPool();
  explicit BufferPool(Options options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A buffer with capacity >= min_bytes (the smallest retained buffer that
  // fits, else a fresh allocation). Thread-safe. The handle must be
  // released (or destroyed) before the pool is destroyed.
  PooledBuffer Acquire(size_t min_bytes);

  struct Stats {
    uint64_t hits = 0;          // Acquire served from the free list
    uint64_t misses = 0;        // Acquire had to allocate
    uint64_t outstanding = 0;   // handles currently live
    uint64_t free_buffers = 0;  // buffers parked in the free list
    uint64_t free_bytes = 0;    // their summed capacity
  };
  Stats stats() const;

 private:
  friend class PooledBuffer;
  void Release(uint8_t* data, size_t capacity);

  struct FreeBuffer {
    uint8_t* data;
    size_t capacity;
  };

  const Options options_;
  mutable std::mutex mutex_;
  std::vector<FreeBuffer> free_;  // kept sorted by capacity (ascending)
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t outstanding_ = 0;
};

}  // namespace cyrus

#endif  // SRC_UTIL_BUFFER_POOL_H_
