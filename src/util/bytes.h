// Byte-buffer aliases and small helpers used across CYRUS.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cyrus {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// Converts between text and bytes without copying surprises.
inline Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

inline std::string ToString(ByteSpan bytes) {
  return std::string(bytes.begin(), bytes.end());
}

inline ByteSpan AsByteSpan(std::string_view text) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

// Constant-time byte comparison (used when comparing digests so that the
// comparison itself does not leak positions; cheap insurance).
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

}  // namespace cyrus

#endif  // SRC_UTIL_BYTES_H_
