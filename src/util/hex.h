// Hex encoding/decoding for digests and share names.
#ifndef SRC_UTIL_HEX_H_
#define SRC_UTIL_HEX_H_

#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(ByteSpan bytes);

// Decodes lowercase or uppercase hex; fails on odd length or non-hex chars.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace cyrus

#endif  // SRC_UTIL_HEX_H_
