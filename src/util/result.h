// Result<T>: a value-or-Status holder, the return type of every fallible
// CYRUS operation that produces a value (similar to absl::StatusOr<T>).
#ifndef SRC_UTIL_RESULT_H_
#define SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace cyrus {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversion from a value or an error Status keeps call sites
  // terse: `return shares;` / `return NotFoundError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or a fallback.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

// Assigns the value of a Result expression to `lhs`, or propagates the error.
// Usage: CYRUS_ASSIGN_OR_RETURN(auto shares, codec.Encode(chunk));
#define CYRUS_ASSIGN_OR_RETURN(lhs, expr)                 \
  CYRUS_ASSIGN_OR_RETURN_IMPL_(                           \
      CYRUS_RESULT_CONCAT_(cyrus_result_, __LINE__), lhs, expr)

#define CYRUS_RESULT_CONCAT_INNER_(a, b) a##b
#define CYRUS_RESULT_CONCAT_(a, b) CYRUS_RESULT_CONCAT_INNER_(a, b)

#define CYRUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace cyrus

#endif  // SRC_UTIL_RESULT_H_
