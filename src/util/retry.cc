#include "src/util/retry.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace cyrus {

void RecordRetryAttempt(double delay_ms) {
  // Registration is find-or-create under a mutex; cache the pointers so
  // the retry hot path is two relaxed atomic adds.
  static obs::Counter* attempts = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_retry_attempts_total", {},
      "Re-attempts issued by RetryWithBackoff across all callers");
  static obs::Gauge* backoff_ms = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_retry_backoff_ms_total", {},
      "Cumulative backoff delay reported to callers, in (virtual) ms");
  attempts->Increment();
  backoff_ms->Add(delay_ms);
}

bool IsRetryableStatus(const Status& status) {
  // Deadline overruns are transient by definition: the CSP may answer the
  // next attempt well inside the budget, so they retry like outages do.
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

RetryBackoff::RetryBackoff(const RetryOptions& options)
    : options_(options),
      rng_(options.seed),
      next_base_ms_(options.initial_backoff_ms) {
  options_.max_attempts = std::max<uint32_t>(options_.max_attempts, 1);
  options_.multiplier = std::max(options_.multiplier, 1.0);
  options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
}

double RetryBackoff::NextDelayMs() {
  ++attempts_;
  const double base = std::min(next_base_ms_, options_.max_backoff_ms);
  next_base_ms_ = std::min(next_base_ms_ * options_.multiplier,
                           options_.max_backoff_ms);
  if (options_.jitter <= 0.0) {
    return base;
  }
  return base * rng_.NextDouble(1.0 - options_.jitter, 1.0 + options_.jitter);
}

}  // namespace cyrus
