// Capped exponential backoff with deterministic jitter for transient
// connector failures.
//
// A single transient error from a CSP (a dropped connection, a 5xx) should
// not fail a whole share transfer; production clients retry a bounded
// number of times before escalating to the failover path. Backoff delays
// grow exponentially up to a cap and are jittered by a seeded Rng
// (src/util/rng.h) so retries from many clients decorrelate while every
// test run stays reproducible. Delays are *reported*, not slept: CYRUS runs
// on a virtual clock, so the caller decides whether a delay means a real
// sleep, a simulated-time advance, or nothing at all.
#ifndef SRC_UTIL_RETRY_H_
#define SRC_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

struct RetryOptions {
  // Total tries including the first; 1 disables retries entirely.
  uint32_t max_attempts = 3;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 1000.0;
  double multiplier = 2.0;
  // Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter).
  double jitter = 0.5;
  // Seeds the jitter stream; callers mix in a per-object value when they
  // want distinct streams per transfer.
  uint64_t seed = 0x52455452;  // "RETR"
};

// Only connectivity failures are worth retrying: the provider may answer
// the next attempt. Quota, auth, and missing-object errors are stable until
// something else changes, and retrying them just burns the budget.
bool IsRetryableStatus(const Status& status);

// The delay sequence of one retry session.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryOptions& options);

  // Whether another attempt is allowed (attempts so far < max_attempts).
  bool ShouldRetry() const { return attempts_ < options_.max_attempts; }

  // Jittered delay before the next attempt, in milliseconds; advances the
  // attempt counter.
  double NextDelayMs();

  uint32_t attempts() const { return attempts_; }

 private:
  RetryOptions options_;
  Rng rng_;
  double next_base_ms_;
  uint32_t attempts_ = 1;  // the first attempt has no preceding delay
};

// Feeds the default metrics registry: increments
// cyrus_retry_attempts_total and adds `delay_ms` to
// cyrus_retry_backoff_ms_total. Called by RetryWithBackoff before each
// re-attempt; defined out of line so the template does not pull metrics.h
// into every includer.
void RecordRetryAttempt(double delay_ms);

// Status extraction for RetryWithBackoff (Status and Result<T> spell it
// differently).
inline const Status& GetRetryStatus(const Status& status) { return status; }
template <typename T>
const Status& GetRetryStatus(const Result<T>& result) {
  return result.status();
}

// Runs `op` until it succeeds, returns a non-retryable error, or the
// attempt budget is spent. `on_backoff(delay_ms)` fires between attempts
// (pass {} to ignore delays). Works for ops returning Status or Result<T>.
template <typename Op>
auto RetryWithBackoff(const RetryOptions& options, Op&& op,
                      const std::function<void(double)>& on_backoff = {})
    -> decltype(op()) {
  RetryBackoff backoff(options);
  auto result = op();
  while (!result.ok() && IsRetryableStatus(GetRetryStatus(result)) &&
         backoff.ShouldRetry()) {
    const double delay_ms = backoff.NextDelayMs();
    RecordRetryAttempt(delay_ms);
    if (on_backoff) {
      on_backoff(delay_ms);
    }
    result = op();
  }
  return result;
}

}  // namespace cyrus

#endif  // SRC_UTIL_RETRY_H_
