#include "src/util/rng.h"

#include <cmath>
#include <numbers>

namespace cyrus {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling: discard values in the final partial range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace cyrus
