// Deterministic pseudo-random number generation.
//
// All randomness in CYRUS's simulators flows through Rng so that every test
// and benchmark is reproducible from a seed. The engine is xoshiro256**,
// which is fast, passes BigCrush, and has a tiny state.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace cyrus {

class Rng {
 public:
  // Seeds the four 64-bit words from `seed` via SplitMix64, which guarantees
  // a well-mixed nonzero state even for small seeds.
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli trial with success probability p.
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Normally distributed value (Box-Muller).
  double NextGaussian(double mean, double stddev);

  // Creates an independent child generator; useful for giving each simulated
  // component its own stream while keeping global determinism.
  Rng Fork();

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace cyrus

#endif  // SRC_UTIL_RNG_H_
