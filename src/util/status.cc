#include "src/util/status.h"

namespace cyrus {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kIntegrity:
      return "integrity";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ConflictError(std::string message) {
  return Status(StatusCode::kConflict, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status IntegrityError(std::string message) {
  return Status(StatusCode::kIntegrity, std::move(message));
}

}  // namespace cyrus
