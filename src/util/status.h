// Status: lightweight error propagation for fallible operations.
//
// CYRUS avoids exceptions on its hot paths (encode/decode, transfer
// scheduling); every fallible API returns Status or Result<T> (see
// src/util/result.h). A Status is cheap to copy in the OK case (no
// allocation) and carries a code plus a human-readable message otherwise.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cyrus {

// Error taxonomy, loosely mirroring absl::StatusCode but trimmed to what a
// client-side storage system needs.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // file / chunk / share / CSP missing
  kAlreadyExists = 3,     // duplicate insert where uniqueness is required
  kFailedPrecondition = 4,// operation illegal in current state
  kUnavailable = 5,       // CSP down or unreachable; retryable
  kDataLoss = 6,          // fewer than t shares recoverable / corrupt data
  kPermissionDenied = 7,  // authentication failure at a CSP
  kResourceExhausted = 8, // CSP quota exceeded
  kInternal = 9,          // invariant violation; a bug
  kConflict = 10,         // concurrent-update conflict detected
  kUnimplemented = 11,
  kDeadlineExceeded = 12, // operation exceeded its latency deadline; retryable
  kIntegrity = 13,        // share bytes failed digest authentication; the
                          // object exists but a CSP returned (or stores)
                          // corrupted data - failover to other shares
};

// Returns a stable lowercase name, e.g. "not_found".
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status Ok() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable in O(1) and empty (8 bytes) when OK.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status ConflictError(std::string message);
Status UnimplementedError(std::string message);
Status DeadlineExceededError(std::string message);
Status IntegrityError(std::string message);

// Propagates a non-OK status from an expression to the caller.
#define CYRUS_RETURN_IF_ERROR(expr)               \
  do {                                            \
    ::cyrus::Status cyrus_status_ = (expr);       \
    if (!cyrus_status_.ok()) return cyrus_status_;\
  } while (0)

}  // namespace cyrus

#endif  // SRC_UTIL_STATUS_H_
