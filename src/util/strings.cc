#include "src/util/strings.h"

#include <array>
#include <cstdio>

namespace cyrus {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  return buf;
}

}  // namespace cyrus
