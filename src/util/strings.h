// Small string helpers (formatting, splitting, joining).
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cyrus {

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on every occurrence of `sep`; adjacent separators yield empty
// pieces. Splitting the empty string yields one empty piece.
std::vector<std::string> Split(std::string_view text, char sep);

// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Concatenates streamable arguments, e.g. StrCat("chunk ", 3, " missing").
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Formats a byte count as a human-readable quantity ("1.5 MB").
std::string HumanBytes(uint64_t bytes);

// Formats a duration in seconds with millisecond precision ("12.345 s").
std::string HumanSeconds(double seconds);

}  // namespace cyrus

#endif  // SRC_UTIL_STRINGS_H_
