#include "src/util/thread_pool.h"

#include <cassert>

namespace cyrus {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace cyrus
