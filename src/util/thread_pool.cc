#include "src/util/thread_pool.h"

#include <cassert>

#include "src/obs/metrics.h"

namespace cyrus {
namespace {

// Process-wide aggregates across every pool instance: one transfer pool is
// typical, but benches build several, and a per-pool label would leak an
// unbounded series per constructed pool.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_threadpool_queue_depth", {}, "Tasks waiting in thread-pool queues");
  return gauge;
}

obs::Gauge* ActiveWorkersGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_threadpool_active_workers", {}, "Worker threads currently running a task");
  return gauge;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_threadpool_tasks_total", {}, "Tasks submitted to any thread pool");
  return counter;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  TasksCounter()->Increment();
  QueueDepthGauge()->Add(1.0);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    QueueDepthGauge()->Add(-1.0);
    ActiveWorkersGauge()->Add(1.0);
    task();
    ActiveWorkersGauge()->Add(-1.0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace cyrus
