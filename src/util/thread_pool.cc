#include "src/util/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "src/obs/metrics.h"

namespace cyrus {
namespace {

// Process-wide aggregates across every pool instance: one transfer pool is
// typical, but benches build several, and a per-pool label would leak an
// unbounded series per constructed pool.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_threadpool_queue_depth", {}, "Tasks waiting in thread-pool queues");
  return gauge;
}

obs::Gauge* ActiveWorkersGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_threadpool_active_workers", {}, "Worker threads currently running a task");
  return gauge;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_threadpool_tasks_total", {}, "Tasks submitted to any thread pool");
  return counter;
}

// Pipeline instruments follow the same process-wide pattern: the depth
// gauge is what a dashboard watches to see whether the in-flight window is
// actually being filled, and the stall series says how often (and for how
// long) the driver blocked because the window was full.
obs::Gauge* PipelineDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Default().GetGauge(
      "cyrus_pipeline_depth", {},
      "Tasks in flight across all ordered pipelines (admitted, completion "
      "not yet delivered)");
  return gauge;
}

obs::Counter* PipelineTasksCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_pipeline_tasks_total", {}, "Tasks admitted to ordered pipelines");
  return counter;
}

obs::Counter* PipelineStallsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_pipeline_stalls_total", {},
      "Times a pipeline driver blocked on a full in-flight window");
  return counter;
}

obs::Histogram* PipelineStallHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Default().GetHistogram(
      "cyrus_pipeline_stall_ms", {}, {},
      "Milliseconds a pipeline driver spent blocked per window stall");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Enqueue(Task task, bool background) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (task.group != nullptr) {
      ++task.group->pending_;
    }
    (background ? background_queue_ : queue_).push(std::move(task));
    ++in_flight_;
  }
  TasksCounter()->Increment();
  QueueDepthGauge()->Add(1.0);
  work_available_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(Task{std::move(task), nullptr}, /*background=*/false);
}

void ThreadPool::Submit(TaskGroup& group, std::function<void()> task) {
  Enqueue(Task{std::move(task), &group}, /*background=*/false);
}

void ThreadPool::SubmitBackground(std::function<void()> task) {
  Enqueue(Task{std::move(task), nullptr}, /*background=*/true);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WaitGroup(TaskGroup& group) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (group.pending_ > 0) {
    if (!queue_.empty()) {
      // Help: run queued work (not necessarily this group's) instead of
      // blocking, so fork-join sections nest without starving the pool.
      RunOneTask(lock);
    } else {
      group.done_.wait(lock);
    }
  }
}

void ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  std::queue<Task>& source = queue_.empty() ? background_queue_ : queue_;
  Task task = std::move(source.front());
  source.pop();
  lock.unlock();
  QueueDepthGauge()->Add(-1.0);
  ActiveWorkersGauge()->Add(1.0);
  task.fn();
  ActiveWorkersGauge()->Add(-1.0);
  lock.lock();
  if (task.group != nullptr && --task.group->pending_ == 0) {
    task.group->done_.notify_all();
  }
  if (--in_flight_ == 0) {
    all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_available_.wait(lock, [this] {
      return shutting_down_ || !queue_.empty() || !background_queue_.empty();
    });
    if (queue_.empty() && background_queue_.empty()) {
      return;  // shutting down and drained
    }
    RunOneTask(lock);
  }
}

// ---------------------------------------------------------------------------
// OrderedPipeline
// ---------------------------------------------------------------------------

OrderedPipeline::OrderedPipeline(ThreadPool* pool, Options options)
    : pool_(pool), options_(options) {
  if (options_.max_in_flight < 1) {
    options_.max_in_flight = 1;
  }
}

OrderedPipeline::~OrderedPipeline() {
  // Join outstanding work so pool tasks never outlive caller-owned state
  // they capture; undelivered completions are intentionally dropped (the
  // caller abandoned the pipeline, e.g. by early-returning on an error).
  std::unique_lock<std::mutex> lock(mutex_);
  head_done_.wait(lock, [this] {
    for (const Entry& entry : window_) {
      if (!entry.work_done) {
        return false;
      }
    }
    return true;
  });
  for (const Entry& entry : window_) {
    PipelineDepthGauge()->Add(-1.0);
    (void)entry;
  }
  window_.clear();
}

void OrderedPipeline::MarkWorkDone(size_t sequence) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Delivery only pops finished entries, so an in-flight task's slot is
  // always still in the window.
  window_[sequence - base_sequence_].work_done = true;
  head_done_.notify_all();
}

void OrderedPipeline::DeliverReady(std::unique_lock<std::mutex>& lock) {
  while (!window_.empty() && window_.front().work_done) {
    Entry entry = std::move(window_.front());
    window_.pop_front();
    ++base_sequence_;
    in_flight_bytes_ -= entry.cost_bytes;
    PipelineDepthGauge()->Add(-1.0);
    const bool run_callback = first_error_.ok();
    lock.unlock();
    if (run_callback) {
      Status status = entry.on_complete();
      lock.lock();
      if (!status.ok() && first_error_.ok()) {
        first_error_ = status;
      }
    } else {
      lock.lock();
    }
  }
}

Status OrderedPipeline::Submit(uint64_t cost_bytes, std::function<void()> work,
                               std::function<Status()> on_complete) {
  std::unique_lock<std::mutex> lock(mutex_);
  DeliverReady(lock);

  // Window admission: block until both the task and byte budgets have
  // room. An empty window always admits, so one oversized task passes
  // through instead of deadlocking.
  const auto window_full = [this, cost_bytes] {
    if (window_.empty()) {
      return false;
    }
    if (window_.size() >= options_.max_in_flight) {
      return true;
    }
    return options_.max_in_flight_bytes > 0 &&
           in_flight_bytes_ + cost_bytes > options_.max_in_flight_bytes;
  };
  if (window_full()) {
    PipelineStallsCounter()->Increment();
    const auto stall_start = std::chrono::steady_clock::now();
    while (window_full()) {
      head_done_.wait(lock, [this] {
        return !window_.empty() && window_.front().work_done;
      });
      DeliverReady(lock);
    }
    const double stalled =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  stall_start)
            .count();
    stall_ms_ += stalled;
    PipelineStallHistogram()->Observe(stalled);
  }
  if (!first_error_.ok()) {
    return first_error_;  // pipeline latched an error; admit nothing new
  }

  const size_t sequence = next_sequence_++;
  window_.push_back(Entry{std::move(on_complete), cost_bytes, /*work_done=*/false});
  in_flight_bytes_ += cost_bytes;
  max_depth_seen_ = std::max(max_depth_seen_, window_.size());
  PipelineDepthGauge()->Add(1.0);
  PipelineTasksCounter()->Increment();

  if (pool_ == nullptr) {
    lock.unlock();
    work();
    lock.lock();
    window_[sequence - base_sequence_].work_done = true;
  } else {
    lock.unlock();
    pool_->Submit([this, sequence, work = std::move(work)] {
      work();
      MarkWorkDone(sequence);
    });
    lock.lock();
  }
  DeliverReady(lock);
  return first_error_;
}

Status OrderedPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!window_.empty()) {
    head_done_.wait(lock,
                    [this] { return window_.empty() || window_.front().work_done; });
    DeliverReady(lock);
  }
  return first_error_;
}

double OrderedPipeline::stall_ms() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stall_ms_;
}

size_t OrderedPipeline::max_depth_seen() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return max_depth_seen_;
}

}  // namespace cyrus
