// A fixed-size thread pool for parallel share transfers, plus the
// task-graph primitives the pipelined transfer engine builds on.
//
// The paper's prototype runs uploads/downloads on dedicated threads with an
// asynchronous event receiver (§5.3, architecture component 3). CYRUS's
// client uses this pool to issue the per-share connector calls of one
// chunk concurrently; completion events flow back through the
// TransferAggregator exactly as in the synchronous path.
//
// Two primitives sit on top of the raw pool:
//
//   TaskGroup      - a fork-join scope that is safe to wait on *from inside
//                    a pool task*: the waiting thread helps execute queued
//                    tasks instead of blocking, so nested parallel sections
//                    (a pipelined chunk fanning out its n share uploads)
//                    cannot deadlock the pool.
//   OrderedPipeline- a bounded sliding window of tasks whose completion
//                    callbacks fire strictly in submission order on the
//                    driver thread. This is the engine behind pipelined
//                    Put/Get: chunk i+1 encodes and uploads while chunk i
//                    is still in flight, but all metadata bookkeeping stays
//                    single-threaded and file-ordered.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/status.h"

namespace cyrus {

class ThreadPool {
 public:
  // A join counter for one fork-join section. Create on the stack, submit
  // tasks against it, then WaitGroup(). Not movable: tasks hold a pointer.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    size_t pending_ = 0;  // guarded by the pool's mutex_
    std::condition_variable done_;
  };

  // num_threads must be >= 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Enqueues a task that counts against `group`; the group must outlive
  // the task's execution (WaitGroup before it leaves scope).
  void Submit(TaskGroup& group, std::function<void()> task);

  // Enqueues a background-priority task: workers only pick it up when the
  // foreground queue is empty, so bulk prefetch (chunk readahead) never
  // delays a pipelined Put/Get already waiting for a thread. Background
  // tasks still count toward Wait() and are drained at destruction.
  void SubmitBackground(std::function<void()> task);

  // Blocks until every task submitted against `group` has finished. Safe
  // to call from inside a pool task: while the group is unfinished the
  // calling thread executes queued tasks (any task, not just the group's),
  // so a task waiting on its subtasks keeps the pool making progress.
  void WaitGroup(TaskGroup& group);

  // Blocks until every submitted task has finished executing. Only
  // meaningful from outside the pool (a worker calling this deadlocks on
  // its own task); prefer TaskGroup scopes for composable sections.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  // Runs `count` tasks produced by `make_task(i)` and waits for all of
  // them. Convenience for fork-join sections; uses a TaskGroup internally,
  // so it is safe to call from inside a pool task.
  template <typename MakeTask>
  void ParallelFor(size_t count, MakeTask make_task) {
    TaskGroup group;
    for (size_t i = 0; i < count; ++i) {
      Submit(group, [i, &make_task] { make_task(i); });
    }
    WaitGroup(group);
  }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void WorkerLoop();
  // Pops and runs the front task - foreground queue first, background
  // otherwise. Requires `lock` held on entry; releases it around the task
  // body and reacquires before returning.
  void RunOneTask(std::unique_lock<std::mutex>& lock);
  void Enqueue(Task task, bool background);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<Task> queue_;
  std::queue<Task> background_queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Runs tasks concurrently on a ThreadPool while delivering their
// completion callbacks strictly in submission order, with a bounded
// in-flight window so memory stays O(window) regardless of how much work
// is fed through.
//
// Contract:
//   - Submit() blocks while the window (task count or byte cost) is full;
//     the blocked time is surfaced as cyrus_pipeline_stall_* metrics.
//   - `work` runs on the pool (or inline when the pool is null).
//   - `on_complete` runs on the driver thread - the one calling Submit()
//     and Drain() - after the task's own work finished AND every earlier
//     task's on_complete returned. This single-threads all bookkeeping.
//   - The first on_complete error latches: later completions are skipped
//     (their work is still joined) and Submit()/Drain() return the error.
//   - Exactly one thread may drive a pipeline; work tasks run anywhere.
class OrderedPipeline {
 public:
  struct Options {
    // Maximum tasks admitted but not yet completion-delivered. 1 degrades
    // to fully sequential execution (the pre-pipeline behavior).
    size_t max_in_flight = 4;
    // Cap on the summed cost_bytes of in-flight tasks; 0 = unbounded. A
    // single task larger than the cap is still admitted when it is alone,
    // so oversized items pass through rather than deadlock.
    uint64_t max_in_flight_bytes = 0;
  };

  // `pool` may be null: work then runs inline in Submit (still ordered).
  OrderedPipeline(ThreadPool* pool, Options options);

  // Joins outstanding work; completions not yet delivered are dropped
  // (callers that care must Drain() and check the status).
  ~OrderedPipeline();

  OrderedPipeline(const OrderedPipeline&) = delete;
  OrderedPipeline& operator=(const OrderedPipeline&) = delete;

  // Admits one task, blocking until the window has room. Completions of
  // finished predecessors are delivered from inside this call.
  Status Submit(uint64_t cost_bytes, std::function<void()> work,
                std::function<Status()> on_complete);

  // Waits for all in-flight work and delivers the remaining completions
  // in order. Returns the first error any on_complete produced.
  Status Drain();

  // Milliseconds Submit() spent blocked on a full window so far.
  double stall_ms() const;
  // Largest number of simultaneously in-flight tasks observed.
  size_t max_depth_seen() const;

 private:
  struct Entry {
    std::function<Status()> on_complete;
    uint64_t cost_bytes = 0;
    bool work_done = false;
  };

  // Delivers completions of every finished head-of-line entry. Requires
  // `lock` held; releases it around each callback.
  void DeliverReady(std::unique_lock<std::mutex>& lock);
  void MarkWorkDone(size_t sequence);

  ThreadPool* pool_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable head_done_;
  std::deque<Entry> window_;   // window_[0] is the oldest undelivered task
  size_t base_sequence_ = 0;   // sequence number of window_[0]
  size_t next_sequence_ = 0;
  uint64_t in_flight_bytes_ = 0;
  Status first_error_;
  double stall_ms_ = 0.0;
  size_t max_depth_seen_ = 0;
};

}  // namespace cyrus

#endif  // SRC_UTIL_THREAD_POOL_H_
