// A fixed-size thread pool for parallel share transfers.
//
// The paper's prototype runs uploads/downloads on dedicated threads with an
// asynchronous event receiver (§5.3, architecture component 3). CYRUS's
// client uses this pool to issue the per-share connector calls of one
// chunk concurrently; completion events flow back through the
// TransferAggregator exactly as in the synchronous path.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cyrus {

class ThreadPool {
 public:
  // num_threads must be >= 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  // Runs `count` tasks produced by `make_task(i)` and waits for all of
  // them. Convenience for fork-join sections.
  template <typename MakeTask>
  void ParallelFor(size_t count, MakeTask make_task) {
    for (size_t i = 0; i < count; ++i) {
      Submit([i, &make_task] { make_task(i); });
    }
    Wait();
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cyrus

#endif  // SRC_UTIL_THREAD_POOL_H_
