#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/baseline/depsky_client.h"
#include "src/baseline/schemes.h"
#include "src/cloud/simulated_csp.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

std::vector<SchemeCsp> FourCsps() {
  // Bandwidths loosely shaped like the four prototype providers.
  return {
      {137, 2.3e6 / 8, 2.3e6 / 8},
      {71, 4.4e6 / 8, 4.4e6 / 8},
      {142, 2.2e6 / 8, 2.2e6 / 8},
      {149, 2.1e6 / 8, 2.1e6 / 8},
  };
}

uint64_t TotalBytes(const SchemePlan& plan) {
  uint64_t total = 0;
  for (const SchemeTransfer& t : plan.transfers) {
    total += t.bytes;
  }
  return total;
}

// --- Scheme planners ---

TEST(SchemesTest, FullReplicationUploadsFileEverywhere) {
  FullReplicationScheme scheme;
  auto plan = scheme.PlanUpload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->transfers.size(), 4u);
  EXPECT_EQ(TotalBytes(*plan), 160000000u);
  EXPECT_EQ(plan->quorum, 0u);
}

TEST(SchemesTest, FullReplicationDownloadsOneReplica) {
  FullReplicationScheme scheme(2);
  auto plan = scheme.PlanDownload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->transfers.size(), 1u);
  EXPECT_EQ(plan->transfers[0].csp, 2);
  EXPECT_EQ(plan->transfers[0].bytes, 40000000u);
}

TEST(SchemesTest, FullStripingSplitsEvenly) {
  FullStripingScheme scheme;
  auto plan = scheme.PlanUpload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->transfers.size(), 4u);
  for (const SchemeTransfer& t : plan->transfers) {
    EXPECT_EQ(t.bytes, 10000000u);
  }
  // Striping uploads the least data of all schemes (paper §7.3).
  EXPECT_EQ(TotalBytes(*plan), 40000000u);
}

TEST(SchemesTest, StripingHandlesRemainder) {
  FullStripingScheme scheme;
  auto plan = scheme.PlanUpload(10, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(TotalBytes(*plan), 10u);
}

TEST(SchemesTest, DepSkyUploadsEverywhereWithQuorum) {
  DepSkyScheme scheme(2, 3, /*seed=*/1);
  auto plan = scheme.PlanUpload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->transfers.size(), 4u);  // shares pushed to ALL CSPs
  EXPECT_EQ(plan->quorum, 3u);            // done when n finish
  EXPECT_GT(plan->pre_delay_seconds, 0.0);  // lock RTTs + backoff
  for (const SchemeTransfer& t : plan->transfers) {
    EXPECT_EQ(t.bytes, 20000000u);  // 40 MB / t
  }
}

TEST(SchemesTest, DepSkyDownloadsGreedyFastest) {
  DepSkyScheme scheme(2, 3, 1);
  auto plan = scheme.PlanDownload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->transfers.size(), 2u);
  // CSP 1 is the fastest; it must be among the greedy picks.
  std::set<int> picked;
  for (const SchemeTransfer& t : plan->transfers) {
    picked.insert(t.csp);
  }
  EXPECT_TRUE(picked.count(1));
}

TEST(SchemesTest, CyrusUploadsExactlyNShares) {
  CyrusScheme scheme(2, 3, 1);
  auto plan = scheme.PlanUpload(40e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->transfers.size(), 3u);
  EXPECT_EQ(plan->quorum, 0u);
  EXPECT_EQ(TotalBytes(*plan), 60000000u);  // (n/t) x file
}

TEST(SchemesTest, CyrusPlacementRotatesAcrossUploads) {
  CyrusScheme scheme(2, 3, 1);
  std::map<int, int> counts;
  for (int upload = 0; upload < 40; ++upload) {
    auto plan = scheme.PlanUpload(1e6, FourCsps());
    ASSERT_TRUE(plan.ok());
    for (const SchemeTransfer& t : plan->transfers) {
      counts[t.csp]++;
    }
  }
  // 40 uploads x 3 shares over 4 CSPs: 30 each, exactly balanced.
  for (const auto& [csp, count] : counts) {
    EXPECT_EQ(count, 30) << "csp " << csp;
  }
}

TEST(SchemesTest, CyrusDownloadUsesStoredHolders) {
  CyrusScheme scheme(2, 3, 1);
  ASSERT_TRUE(scheme.PlanUpload(1e6, FourCsps()).ok());
  auto plan = scheme.PlanDownload(1e6, FourCsps());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->transfers.size(), 2u);
}

TEST(SchemesTest, TooFewCspsRejected) {
  DepSkyScheme depsky(2, 3, 1);
  CyrusScheme cyrus(2, 3, 1);
  std::vector<SchemeCsp> two = {FourCsps()[0], FourCsps()[1]};
  EXPECT_FALSE(depsky.PlanUpload(1e6, two).ok());
  EXPECT_FALSE(cyrus.PlanUpload(1e6, two).ok());
}

// --- Functional DepSky client ---

struct DepSkyCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<DepSkyClient> client;
};

DepSkyCloud MakeDepSky(uint32_t t = 2, uint32_t n = 3) {
  DepSkyCloud cloud;
  cloud.client = std::make_unique<DepSkyClient>("depsky key", t, n, "client-1", 7,
                                                /*mean_backoff_seconds=*/0.5);
  for (int i = 0; i < 4; ++i) {
    SimulatedCspOptions o;
    o.id = "csp" + std::to_string(i);
    auto csp = std::make_shared<SimulatedCsp>(o);
    cloud.csps.push_back(csp);
    CspProfile profile;
    profile.rtt_ms = 100.0 + i;
    profile.upload_bytes_per_sec = (i == 0) ? 1e6 : 10e6 + i * 1e6;
    profile.download_bytes_per_sec = profile.upload_bytes_per_sec;
    EXPECT_TRUE(cloud.client->AddCsp(csp, profile, Credentials{"token"}).ok());
  }
  return cloud;
}

TEST(DepSkyClientTest, WriteReadRoundTrip) {
  DepSkyCloud cloud = MakeDepSky();
  Rng rng(1);
  Bytes content(50000);
  for (auto& b : content) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto write = cloud.client->Write("file", content);
  ASSERT_TRUE(write.ok()) << write.status();
  EXPECT_EQ(write->share_csps.size(), 3u);
  EXPECT_GT(write->protocol_delay_seconds, 0.0);

  auto read = cloud.client->Read("file");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->content, content);
  EXPECT_EQ(read->share_csps.size(), 2u);
}

TEST(DepSkyClientTest, CancelsSlowestUpload) {
  // CSP 0 is the slowest uploader; with n = 3 of 4 it gets cancelled, so
  // it never stores a data share (Figure 18's skew mechanism).
  DepSkyCloud cloud = MakeDepSky();
  Bytes content(10000, 0x5A);
  auto write = cloud.client->Write("file", content);
  ASSERT_TRUE(write.ok());
  for (int csp : write->share_csps) {
    EXPECT_NE(csp, 0);
  }
}

TEST(DepSkyClientTest, GreedyReadsPreferFastest) {
  DepSkyCloud cloud = MakeDepSky();
  Bytes content(10000, 0x11);
  ASSERT_TRUE(cloud.client->Write("file", content).ok());
  auto read = cloud.client->Read("file");
  ASSERT_TRUE(read.ok());
  // The two fastest holders are CSPs 3 and 2.
  EXPECT_EQ((std::set<int>{read->share_csps.begin(), read->share_csps.end()}),
            (std::set<int>{2, 3}));
}

TEST(DepSkyClientTest, ReadMissingFileFails) {
  DepSkyCloud cloud = MakeDepSky();
  EXPECT_EQ(cloud.client->Read("ghost").status().code(), StatusCode::kNotFound);
}

TEST(DepSkyClientTest, RivalLockCausesConflict) {
  DepSkyCloud cloud = MakeDepSky();
  // A rival's lock object sits on one CSP.
  ASSERT_TRUE(cloud.csps[1]->Upload("depsky-lock-file-rival", ToBytes("rival")).ok());
  Bytes content(1000, 0x22);
  auto write = cloud.client->Write("file", content);
  EXPECT_EQ(write.status().code(), StatusCode::kConflict);
  // Our own lock must have been released on every CSP.
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("depsky-lock-file-client-1");
    ASSERT_TRUE(listing.ok());
    EXPECT_TRUE(listing->empty());
  }
}

TEST(DepSkyClientTest, LocksReleasedAfterWrite) {
  DepSkyCloud cloud = MakeDepSky();
  Bytes content(1000, 0x33);
  ASSERT_TRUE(cloud.client->Write("file", content).ok());
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("depsky-lock-");
    ASSERT_TRUE(listing.ok());
    EXPECT_TRUE(listing->empty());
  }
}

TEST(DepSkyClientTest, NeedsNCsps) {
  DepSkyClient client("k", 2, 5, "c", 1);
  auto csp = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"solo"});
  ASSERT_TRUE(client.AddCsp(csp, CspProfile{}, Credentials{"token"}).ok());
  EXPECT_EQ(client.Write("f", Bytes(10, 1)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DepSkyClientTest, ReadSurvivesOneCspOutage) {
  DepSkyCloud cloud = MakeDepSky(2, 3);
  Bytes content(20000, 0x44);
  auto write = cloud.client->Write("file", content);
  ASSERT_TRUE(write.ok());
  // Take down one CSP that holds a share; n - t = 1 outage is survivable.
  ASSERT_FALSE(write->share_csps.empty());
  cloud.csps[write->share_csps.front()]->set_available(false);
  auto read = cloud.client->Read("file");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->content, content);
}

TEST(DepSkyClientTest, OverwriteReplacesContent) {
  DepSkyCloud cloud = MakeDepSky();
  ASSERT_TRUE(cloud.client->Write("doc", Bytes(500, 0x01)).ok());
  const Bytes v2(700, 0x02);
  ASSERT_TRUE(cloud.client->Write("doc", v2).ok());
  auto read = cloud.client->Read("doc");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->content, v2);
}

}  // namespace
}  // namespace cyrus
