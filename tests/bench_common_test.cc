// Tests for the experiment-harness plumbing in bench/common.h: the Table 4
// dataset generator, TransferReport/SchemePlan -> completion-time
// conversion, and the statistics helpers. The benchmarks' credibility rests
// on this layer, so it gets the same scrutiny as the library.
#include <gtest/gtest.h>

#include "bench/common.h"

namespace cyrus {
namespace bench {
namespace {

TEST(DatasetTest, MatchesTable4CountsAndScaledBytes) {
  const double scale = 0.125;
  const auto files = GenerateTable4Dataset(scale, 1);
  size_t total_files = 0;
  uint64_t total_bytes = 0;
  for (const DatasetSpec& spec : Table4Spec()) {
    size_t count = 0;
    uint64_t bytes = 0;
    for (const DatasetFile& file : files) {
      if (file.extension == spec.extension) {
        ++count;
        bytes += file.content.size();
      }
    }
    EXPECT_EQ(count, spec.num_files) << spec.extension;
    EXPECT_NEAR(static_cast<double>(bytes), scale * spec.total_bytes,
                spec.num_files + 1.0)
        << spec.extension;
    total_files += count;
    total_bytes += bytes;
  }
  EXPECT_EQ(total_files, 172u);
  EXPECT_NEAR(static_cast<double>(total_bytes), scale * 638433479.0, 200.0);
}

TEST(DatasetTest, DeterministicForSeed) {
  const auto a = GenerateTable4Dataset(0.01, 7);
  const auto b = GenerateTable4Dataset(0.01, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].content, b[i].content);
  }
}

TEST(DatasetTest, FileSizesVary) {
  const auto files = GenerateTable4Dataset(0.05, 3);
  std::set<size_t> pdf_sizes;
  for (const DatasetFile& file : files) {
    if (file.extension == "pdf") {
      pdf_sizes.insert(file.content.size());
    }
  }
  EXPECT_GT(pdf_sizes.size(), 50u);  // log-normal jitter, not constant sizes
}

TEST(TimingTest, SingleUploadMatchesHandComputation) {
  TransferReport report;
  report.records.push_back({TransferKind::kPut, 0, "s", 30000000, true});
  const std::vector<double> up = {15e6, 2e6};
  const std::vector<double> down = up;
  // 30 MB at 15 MB/s = 2 s.
  EXPECT_NEAR(TransferCompletionSeconds(report, up, down), 2.0, 1e-6);
}

TEST(TimingTest, FailedRecordsDoNotMove) {
  TransferReport report;
  report.records.push_back({TransferKind::kPut, 0, "s", 30000000, false});
  EXPECT_NEAR(TransferCompletionSeconds(report, {15e6}, {15e6}), 0.0, 1e-9);
}

TEST(TimingTest, ClientUplinkCapBinds) {
  TransferReport report;
  for (int c = 0; c < 3; ++c) {
    report.records.push_back({TransferKind::kPut, c, "s", 10000000, true});
  }
  TimingOptions options;
  options.client_uplink = 5e6;
  // 30 MB through a 5 MB/s shared uplink = 6 s even with fast CSPs.
  EXPECT_NEAR(TransferCompletionSeconds(report, {15e6, 15e6, 15e6},
                                        {15e6, 15e6, 15e6}, options),
              6.0, 1e-6);
}

TEST(TimingTest, UploadsAndDownloadsUseSeparateDirections) {
  TransferReport report;
  report.records.push_back({TransferKind::kPut, 0, "up", 10000000, true});
  report.records.push_back({TransferKind::kGet, 0, "down", 10000000, true});
  // Up at 1 MB/s (10 s) and down at 10 MB/s (1 s) run on separate links.
  EXPECT_NEAR(TransferCompletionSeconds(report, {1e6}, {10e6}), 10.0, 1e-6);
}

TEST(TimingTest, SchemeQuorumStopsEarly) {
  SchemePlan plan;
  for (int c = 0; c < 4; ++c) {
    plan.transfers.push_back(SchemeTransfer{c, 10000000});
  }
  plan.quorum = 3;
  const std::vector<SchemeCsp> csps = {
      {100, 10e6, 10e6}, {100, 5e6, 5e6}, {100, 2e6, 2e6}, {100, 0.5e6, 0.5e6}};
  // Completions: 1, 2, 5, 20 s -> the 3rd finishes at 5 s.
  EXPECT_NEAR(SchemeCompletionSeconds(plan, false, csps), 5.0, 1e-6);
  plan.quorum = 0;  // wait for all
  EXPECT_NEAR(SchemeCompletionSeconds(plan, false, csps), 20.0, 1e-6);
}

TEST(TimingTest, SchemePreDelayShiftsCompletion) {
  SchemePlan plan;
  plan.transfers.push_back(SchemeTransfer{0, 10000000});
  plan.pre_delay_seconds = 3.0;
  const std::vector<SchemeCsp> csps = {{100, 10e6, 10e6}};
  EXPECT_NEAR(SchemeCompletionSeconds(plan, true, csps), 4.0, 1e-6);
}

TEST(StatsTest, BoxStatsOnKnownSamples) {
  const BoxStats stats = ComputeBoxStats({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(stats.min, 1);
  EXPECT_DOUBLE_EQ(stats.median, 3);
  EXPECT_DOUBLE_EQ(stats.max, 5);
  EXPECT_DOUBLE_EQ(stats.q1, 2);
  EXPECT_DOUBLE_EQ(stats.q3, 4);
  EXPECT_DOUBLE_EQ(stats.mean, 3);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(ComputeBoxStats({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(TestbedTest, BuildsSevenCloudsWithPinnedN) {
  Testbed bed = MakeTestbed(2, 4);
  EXPECT_EQ(bed.csps.size(), 7u);
  EXPECT_EQ(bed.download_bytes_per_sec[0], kFastCloudBytesPerSec);
  EXPECT_EQ(bed.download_bytes_per_sec[6], kSlowCloudBytesPerSec);
  auto n = bed.client->CurrentN();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  Testbed bed34 = MakeTestbed(3, 4);
  auto n34 = bed34.client->CurrentN();
  ASSERT_TRUE(n34.ok());
  EXPECT_EQ(*n34, 4u);
}

}  // namespace
}  // namespace bench
}  // namespace cyrus
