// Tests for the aligned reusable buffer pool (src/util/buffer_pool.h):
// alignment and capacity contracts, reuse-after-release, concurrent
// checkout from thread-pool workers (selected into the TSan tier), and the
// end-to-end regression that a pooled Put uploads byte-identical share
// objects to the pre-pool allocation path.
#include "src/util/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

TEST(BufferPoolTest, BuffersAreAlignedAndRoundedToGranularity) {
  BufferPool pool;
  for (const size_t want : {size_t{1}, size_t{31}, size_t{4096}, size_t{4097},
                            size_t{1 << 20}}) {
    PooledBuffer buffer = pool.Acquire(want);
    ASSERT_TRUE(buffer);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 32, 0u)
        << "capacity " << buffer.capacity();
    EXPECT_GE(buffer.capacity(), want);
    EXPECT_EQ(buffer.capacity() % 4096, 0u);
    EXPECT_EQ(buffer.span(want).size(), want);
  }
}

TEST(BufferPoolTest, CustomAlignmentIsHonored) {
  BufferPool::Options options;
  options.alignment = 64;
  BufferPool pool(options);
  PooledBuffer buffer = pool.Acquire(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 64, 0u);
}

TEST(BufferPoolTest, ReleasedBufferIsReusedByTheNextAcquire) {
  BufferPool pool;
  uint8_t* first = nullptr;
  {
    PooledBuffer buffer = pool.Acquire(1000);
    first = buffer.data();
  }  // released back to the pool here
  PooledBuffer again = pool.Acquire(1000);
  EXPECT_EQ(again.data(), first);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
}

TEST(BufferPoolTest, TightestFitWinsAndLargeBuffersStayParked) {
  BufferPool pool;
  uint8_t* small = nullptr;
  uint8_t* large = nullptr;
  {
    PooledBuffer a = pool.Acquire(4096);
    PooledBuffer b = pool.Acquire(64 * 1024);
    small = a.data();
    large = b.data();
  }
  // A small request must take the 4 KB buffer, not burn the 64 KB one.
  PooledBuffer c = pool.Acquire(100);
  EXPECT_EQ(c.data(), small);
  PooledBuffer d = pool.Acquire(32 * 1024);
  EXPECT_EQ(d.data(), large);
}

TEST(BufferPoolTest, MoveTransfersOwnershipWithoutDoubleRelease) {
  BufferPool pool;
  PooledBuffer a = pool.Acquire(100);
  uint8_t* data = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting moved-from state
  b.Release();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().free_buffers, 1u);
}

TEST(BufferPoolTest, FreeListIsBoundedByMaxFreeBuffers) {
  BufferPool::Options options;
  options.max_free_buffers = 2;
  BufferPool pool(options);
  {
    std::vector<PooledBuffer> buffers;
    for (int i = 0; i < 5; ++i) {
      buffers.push_back(pool.Acquire(4096));
    }
  }  // all five released; only two may be retained
  EXPECT_EQ(pool.stats().free_buffers, 2u);
}

// Concurrent checkout/release from thread-pool workers; runs under the
// --tsan tier to prove the free-list locking.
TEST(BufferPoolTest, ConcurrentCheckoutFromThreadPoolWorkers) {
  BufferPool pool;
  ThreadPool workers(4);
  std::atomic<uint64_t> touched{0};
  ThreadPool::TaskGroup group;
  for (int task = 0; task < 32; ++task) {
    workers.Submit(group, [&pool, &touched, task] {
      Rng rng(0xC0FFEE + static_cast<uint64_t>(task));
      for (int i = 0; i < 50; ++i) {
        const size_t want = 1 + rng.NextBelow(32 * 1024);
        PooledBuffer buffer = pool.Acquire(want);
        MutableByteSpan span = buffer.span(want);
        // Touch first and last byte so TSan sees the memory handoff.
        span.front() = static_cast<uint8_t>(task);
        span.back() = static_cast<uint8_t>(i);
        touched.fetch_add(span.front() + span.back(),
                          std::memory_order_relaxed);
      }
    });
  }
  workers.WaitGroup(group);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// --- End-to-end regression: pooled Put == pre-pool Put, byte for byte ---

struct MiniCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

MiniCloud MakeCloud(bool use_buffer_pool) {
  MiniCloud cloud;
  CyrusConfig config;
  config.client_id = "pool-device";
  config.key_string = "pool regression key";
  config.t = 2;
  config.meta_t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.use_buffer_pool = use_buffer_pool;
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (int i = 0; i < 5; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("pool-csp", i);
    cloud.csps.push_back(std::make_shared<SimulatedCsp>(o));
    CspProfile profile;
    profile.rtt_ms = 50 + 10.0 * i;
    profile.download_bytes_per_sec = 8e6;
    profile.upload_bytes_per_sec = 4e6;
    auto added =
        cloud.client->AddCsp(cloud.csps.back(), profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

// Every object stored across the cloud, keyed "<csp-id>/<object-name>".
std::map<std::string, Bytes> DumpObjects(MiniCloud& cloud) {
  std::map<std::string, Bytes> objects;
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("");
    EXPECT_TRUE(listing.ok()) << listing.status();
    for (const ObjectInfo& info : *listing) {
      auto data = csp->Download(info.name);
      EXPECT_TRUE(data.ok()) << data.status();
      objects.emplace(StrCat(csp->id(), "/", info.name), *std::move(data));
    }
  }
  return objects;
}

TEST(BufferPoolTest, PooledPutUploadsIdenticalBytesToPrePoolPath) {
  Rng rng(0x900DBEEF);
  Bytes content(100 * 1024);
  for (auto& b : content) {
    b = static_cast<uint8_t>(rng.Next());
  }
  MiniCloud pooled = MakeCloud(/*use_buffer_pool=*/true);
  MiniCloud legacy = MakeCloud(/*use_buffer_pool=*/false);
  auto put_pooled = pooled.client->Put("regression.bin", content);
  ASSERT_TRUE(put_pooled.ok()) << put_pooled.status();
  auto put_legacy = legacy.client->Put("regression.bin", content);
  ASSERT_TRUE(put_legacy.ok()) << put_legacy.status();

  const std::map<std::string, Bytes> a = DumpObjects(pooled);
  const std::map<std::string, Bytes> b = DumpObjects(legacy);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, bytes] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << name << " only uploaded by the pooled client";
    EXPECT_EQ(bytes, it->second) << name;
  }

  // And both round-trip.
  auto get = pooled.client->Get("regression.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

}  // namespace
}  // namespace cyrus
