// Streaming tier: the byte-budgeted ARC chunk cache (budget enforcement,
// ghost-list promotion, scan resistance, concurrent readers) and the
// range-read path built on it - GetRange correctness, cache reuse,
// sequential readahead, invalidation on overwrite/delete, and the
// get_via_range_path A/B lever against the legacy whole-file gather.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/core/chunk_cache.h"
#include "src/core/client.h"
#include "src/crypto/sha1.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

Sha1Digest IdOf(uint64_t seed) {
  return Sha1::Hash(ByteSpan(RandomContent(8, seed)));
}

std::shared_ptr<const Bytes> Block(size_t size, uint8_t fill) {
  return std::make_shared<const Bytes>(size, fill);
}

// --- ARC cache unit tests ------------------------------------------------

TEST(ChunkCacheTest, PutGetPeekRoundTrip) {
  obs::MetricsRegistry metrics;
  ChunkCache cache(ChunkCacheOptions{1 << 20, 1, &metrics});
  const Sha1Digest id = IdOf(1);
  EXPECT_EQ(cache.Get(id), nullptr);
  cache.Put(id, Block(1024, 0xAB));
  auto hit = cache.Get(id);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 1024u);
  EXPECT_EQ((*hit)[0], 0xAB);

  const ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes, 1024u);

  // Peek neither counts nor promotes.
  EXPECT_NE(cache.Peek(id), nullptr);
  EXPECT_EQ(cache.Peek(IdOf(2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ChunkCacheTest, ByteBudgetIsEnforced) {
  obs::MetricsRegistry metrics;
  constexpr uint64_t kBudget = 64 * 1024;
  ChunkCache cache(ChunkCacheOptions{kBudget, 1, &metrics});
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Put(IdOf(i), Block(4096, static_cast<uint8_t>(i)));
    EXPECT_LE(cache.stats().bytes, kBudget) << "after insert " << i;
  }
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_EQ(stats.entries, kBudget / 4096);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.ghost_entries, 0u);  // evictees remembered, not forgotten
}

TEST(ChunkCacheTest, GhostHitReentersAsFrequent) {
  obs::MetricsRegistry metrics;
  constexpr uint64_t kBudget = 16 * 1024;
  ChunkCache cache(ChunkCacheOptions{kBudget, 1, &metrics});
  // Fill past budget so the earliest ids are evicted into the B1 ghosts.
  for (uint64_t i = 0; i < 8; ++i) {
    cache.Put(IdOf(i), Block(4096, 1));
  }
  ASSERT_EQ(cache.Get(IdOf(0)), nullptr);  // evicted
  ASSERT_GT(cache.stats().ghost_entries, 0u);

  // Re-inserting a ghost is ARC's "seen twice" signal: the entry must come
  // back on the frequency list, not as a fresh one-timer.
  const uint64_t t2_before = cache.stats().t2_bytes;
  cache.Put(IdOf(0), Block(4096, 1));
  EXPECT_NE(cache.Get(IdOf(0)), nullptr);
  EXPECT_GE(cache.stats().t2_bytes, t2_before + 4096);
}

TEST(ChunkCacheTest, SequentialScanDoesNotFlushHotSet) {
  obs::MetricsRegistry metrics;
  constexpr uint64_t kBudget = 32 * 1024;
  ChunkCache cache(ChunkCacheOptions{kBudget, 1, &metrics});
  // Build a hot set: inserted and re-read, so it lives in T2.
  std::vector<Sha1Digest> hot;
  for (uint64_t i = 0; i < 4; ++i) {
    hot.push_back(IdOf(1000 + i));
    cache.Put(hot.back(), Block(4096, 2));
  }
  for (const Sha1Digest& id : hot) {
    ASSERT_NE(cache.Get(id), nullptr);
  }
  // A one-shot scan 4x the budget: each id seen exactly once.
  for (uint64_t i = 0; i < 32; ++i) {
    cache.Put(IdOf(2000 + i), Block(4096, 3));
  }
  // The scan churns through T1; the re-read set survives in T2.
  size_t survivors = 0;
  for (const Sha1Digest& id : hot) {
    survivors += cache.Peek(id) != nullptr ? 1 : 0;
  }
  EXPECT_GE(survivors, hot.size() / 2)
      << "scan flushed the frequently re-read chunks";
}

TEST(ChunkCacheTest, InvalidateDropsResidentAndGhost) {
  obs::MetricsRegistry metrics;
  ChunkCache cache(ChunkCacheOptions{1 << 20, 2, &metrics});
  const Sha1Digest id = IdOf(7);
  cache.Put(id, Block(2048, 4));
  ASSERT_NE(cache.Peek(id), nullptr);
  cache.Invalidate(id);
  EXPECT_EQ(cache.Peek(id), nullptr);
  EXPECT_EQ(cache.stats().bytes, 0u);
  cache.Invalidate(id);  // absent: no-op
}

TEST(ChunkCacheTest, OversizedEntriesAndZeroBudgetAreSkipped) {
  obs::MetricsRegistry metrics;
  ChunkCache small(ChunkCacheOptions{8 * 1024, 8, &metrics});
  small.Put(IdOf(8), Block(4096, 5));  // > per-shard budget of 1 KiB
  EXPECT_EQ(small.Peek(IdOf(8)), nullptr);

  ChunkCache off(ChunkCacheOptions{0, 1, &metrics});
  EXPECT_FALSE(off.enabled());
  off.Put(IdOf(9), Block(128, 6));
  EXPECT_EQ(off.Get(IdOf(9)), nullptr);
}

// TSan surface: readers, writers, and invalidators race over a small id
// set; the shared_ptr values must stay alive across concurrent eviction.
TEST(ChunkCacheTest, ConcurrentReadersWritersInvalidators) {
  obs::MetricsRegistry metrics;
  ChunkCache cache(ChunkCacheOptions{256 * 1024, 4, &metrics});
  constexpr int kIds = 32;
  std::vector<Sha1Digest> ids;
  for (int i = 0; i < kIds; ++i) {
    ids.push_back(IdOf(3000 + static_cast<uint64_t>(i)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 500; ++i) {
        const Sha1Digest& id = ids[rng.Next() % kIds];
        switch (rng.Next() % 4) {
          case 0:
            cache.Put(id, Block(1024 + rng.Next() % 4096,
                                static_cast<uint8_t>(t)));
            break;
          case 3:
            cache.Invalidate(id);
            break;
          default:
            if (auto data = cache.Get(id); data != nullptr) {
              // Touch the bytes: must stay valid even if evicted now.
              volatile uint8_t sink = (*data)[data->size() - 1];
              (void)sink;
            }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_LE(cache.stats().bytes, cache.byte_budget());
}

// --- range reads through the client --------------------------------------

struct StreamCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

CyrusConfig StreamConfig(std::string client_id) {
  CyrusConfig config;
  config.key_string = "stream test key";
  config.client_id = std::move(client_id);
  config.t = 2;
  config.epsilon = 1e-3;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.readahead_chunks = 0;  // tests opt in explicitly
  return config;
}

StreamCloud MakeCloud(CyrusConfig config,
                      std::vector<std::shared_ptr<SimulatedCsp>> csps = {}) {
  StreamCloud cloud;
  if (csps.empty()) {
    for (int i = 0; i < 4; ++i) {
      cloud.csps.push_back(std::make_shared<SimulatedCsp>(
          SimulatedCspOptions{StrCat("csp", i)}));
    }
  } else {
    cloud.csps = std::move(csps);
  }
  cloud.client = std::move(CyrusClient::Create(std::move(config))).value();
  for (auto& csp : cloud.csps) {
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    EXPECT_TRUE(cloud.client->AddCsp(csp, profile, Credentials{"token"}).ok());
  }
  return cloud;
}

Bytes Slice(const Bytes& content, uint64_t offset, uint64_t len) {
  const uint64_t end = std::min<uint64_t>(content.size(), offset + len);
  return Bytes(content.begin() + static_cast<ptrdiff_t>(offset),
               content.begin() + static_cast<ptrdiff_t>(end));
}

TEST(RangeReadTest, RangesMatchFullContent) {
  StreamCloud cloud = MakeCloud(StreamConfig("ranger"));
  const Bytes content = RandomContent(64 * 1024, 11);
  ASSERT_TRUE(cloud.client->Put("r.bin", content).ok());

  const struct {
    uint64_t offset, len;
  } kRanges[] = {
      {0, 1},           {0, 64 * 1024},    {1, 100},
      {8191, 2},        {17000, 12345},    {64 * 1024 - 1, 1},
      {60000, 1 << 20},  // len clamped to the file end
  };
  for (const auto& range : kRanges) {
    auto got = cloud.client->GetRange("r.bin", range.offset, range.len);
    ASSERT_TRUE(got.ok()) << got.status() << " at " << range.offset;
    EXPECT_EQ(got->content, Slice(content, range.offset, range.len))
        << "offset " << range.offset << " len " << range.len;
    EXPECT_EQ(got->range_offset, range.offset);
    EXPECT_EQ(got->file_size, content.size());
  }

  // A range starting past the end is an InvalidArgument (the REST layer's
  // 416), not an empty success.
  auto past = cloud.client->GetRange("r.bin", content.size() + 1, 10);
  EXPECT_EQ(past.status().code(), StatusCode::kInvalidArgument);
  // Zero-length at a valid offset is an empty slice.
  auto empty = cloud.client->GetRange("r.bin", 100, 0);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->content.empty());
}

TEST(RangeReadTest, RangeDownloadsOnlyCoveringChunks) {
  StreamCloud cloud = MakeCloud(StreamConfig("ranger"));
  const Bytes content = RandomContent(256 * 1024, 12);
  ASSERT_TRUE(cloud.client->Put("big.bin", content).ok());

  auto got = cloud.client->GetRange("big.bin", 100 * 1024, 1024);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->content, Slice(content, 100 * 1024, 1024));
  // The test chunker averages ~1 KiB chunks, so a 1 KiB range covers a
  // handful of chunks out of ~256; downloaded shares must be a small
  // fraction of the 256 KiB file.
  EXPECT_LE(got->chunks_decoded, 16u);
  EXPECT_LT(got->transfer.TotalBytes(TransferKind::kGet), 32u * 1024);
}

TEST(RangeReadTest, RepeatRangeIsServedFromCache) {
  StreamCloud cloud = MakeCloud(StreamConfig("ranger"));
  const Bytes content = RandomContent(32 * 1024, 13);
  ASSERT_TRUE(cloud.client->Put("hot.bin", content).ok());

  auto cold = cloud.client->GetRange("hot.bin", 4096, 8192);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_GT(cold->chunks_decoded, 0u);

  auto warm = cloud.client->GetRange("hot.bin", 4096, 8192);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->content, cold->content);
  EXPECT_EQ(warm->chunks_decoded, 0u);
  EXPECT_GT(warm->chunks_from_cache, 0u);
  EXPECT_EQ(warm->transfer.TotalBytes(TransferKind::kGet), 0u);
}

TEST(RangeReadTest, SequentialReadsTriggerReadahead) {
  CyrusConfig config = StreamConfig("streamer");
  // 16 picks x the 128-byte minimum chunk always spans the next 2 KiB
  // step, so the third range below is fully prefetched even in the
  // worst-case chunking of this seed.
  config.readahead_chunks = 16;
  StreamCloud cloud = MakeCloud(std::move(config));
  const Bytes content = RandomContent(128 * 1024, 14);
  ASSERT_TRUE(cloud.client->Put("seq.bin", content).ok());

  // Two back-to-back ranges: the second is sequential (offset == previous
  // end), which arms the detector and prefetches the chunks after it.
  constexpr uint64_t kStep = 2 * 1024;
  auto first = cloud.client->GetRange("seq.bin", 0, kStep);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = cloud.client->GetRange("seq.bin", kStep, kStep);
  ASSERT_TRUE(second.ok()) << second.status();
  cloud.client->WaitForReadahead();

  const CyrusClient::ReadaheadStats stats = cloud.client->readahead_stats();
  EXPECT_GT(stats.issued, 0u);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.issued, stats.completed + stats.cancelled);

  // The third sequential range was prefetched: no foreground decodes.
  auto third = cloud.client->GetRange("seq.bin", 2 * kStep, kStep);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third->content, Slice(content, 2 * kStep, kStep));
  EXPECT_EQ(third->chunks_decoded, 0u);
  EXPECT_GT(third->chunks_from_cache, 0u);
}

TEST(RangeReadTest, SeekCreditsInFlightReadahead) {
  CyrusConfig config = StreamConfig("seeker");
  config.readahead_chunks = 8;
  StreamCloud cloud = MakeCloud(std::move(config));
  const Bytes content = RandomContent(256 * 1024, 15);
  ASSERT_TRUE(cloud.client->Put("seek.bin", content).ok());

  constexpr uint64_t kStep = 8 * 1024;
  ASSERT_TRUE(cloud.client->GetRange("seek.bin", 0, kStep).ok());
  ASSERT_TRUE(cloud.client->GetRange("seek.bin", kStep, kStep).ok());
  // Seek far away: the stream generation bumps, and any still-queued
  // prefetch for the old position self-cancels instead of running.
  ASSERT_TRUE(cloud.client->GetRange("seek.bin", 200 * 1024, kStep).ok());
  cloud.client->WaitForReadahead();

  const CyrusClient::ReadaheadStats stats = cloud.client->readahead_stats();
  EXPECT_GT(stats.issued, 0u);
  // Every issued prefetch is accounted: stored or credited, never leaked.
  EXPECT_EQ(stats.issued, stats.completed + stats.cancelled);
}

TEST(RangeReadTest, OverwriteAndDeleteInvalidateCachedChunks) {
  StreamCloud cloud = MakeCloud(StreamConfig("writer"));
  const Bytes v1 = RandomContent(32 * 1024, 16);
  ASSERT_TRUE(cloud.client->Put("mut.bin", v1).ok());
  ASSERT_TRUE(cloud.client->GetRange("mut.bin", 0, v1.size()).ok());
  ASSERT_GT(cloud.client->chunk_cache().stats().entries, 0u);

  // Overwrite with unrelated content: every v1-only chunk leaves the cache
  // (its refcount is gone; the bytes can never be served again).
  const Bytes v2 = RandomContent(32 * 1024, 17);
  ASSERT_TRUE(cloud.client->Put("mut.bin", v2).ok());
  EXPECT_EQ(cloud.client->chunk_cache().stats().entries, 0u);

  auto got = cloud.client->GetRange("mut.bin", 0, v2.size());
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->content, v2);
  ASSERT_GT(cloud.client->chunk_cache().stats().entries, 0u);

  // Delete drops the rest.
  ASSERT_TRUE(cloud.client->Delete("mut.bin").ok());
  EXPECT_EQ(cloud.client->chunk_cache().stats().entries, 0u);
}

TEST(RangeReadTest, DuplicateChunksAreAssembledCorrectly) {
  StreamCloud cloud = MakeCloud(StreamConfig("dup"));
  // Highly repetitive content: content-defined chunking emits the same
  // chunk id many times, so the range path must fan one decode (or one
  // cache hit) out to every covering occurrence.
  Bytes content;
  const Bytes unit = RandomContent(4 * 1024, 18);
  for (int i = 0; i < 16; ++i) {
    content.insert(content.end(), unit.begin(), unit.end());
  }
  ASSERT_TRUE(cloud.client->Put("rep.bin", content).ok());

  auto whole = cloud.client->GetRange("rep.bin", 0, content.size());
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(whole->content, content);

  // Warm pass: duplicates fill from the cache, zero decodes.
  auto warm = cloud.client->GetRange("rep.bin", 0, content.size());
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->content, content);
  EXPECT_EQ(warm->chunks_decoded, 0u);
}

TEST(RangeReadTest, WholeFileGetMatchesLegacyPath) {
  StreamCloud range_cloud = MakeCloud(StreamConfig("writer"));
  const Bytes content = RandomContent(96 * 1024, 19);
  ASSERT_TRUE(range_cloud.client->Put("ab.bin", content).ok());

  // Same CSP pool, read through both gather paths.
  auto via_range = range_cloud.client->Get("ab.bin");
  ASSERT_TRUE(via_range.ok()) << via_range.status();
  EXPECT_EQ(via_range->content, content);
  EXPECT_EQ(via_range->file_size, content.size());

  CyrusConfig legacy_config = StreamConfig("legacy");
  legacy_config.get_via_range_path = false;
  StreamCloud legacy = MakeCloud(std::move(legacy_config), range_cloud.csps);
  ASSERT_TRUE(legacy.client->SyncMetadata().ok());
  auto via_legacy = legacy.client->Get("ab.bin");
  ASSERT_TRUE(via_legacy.ok()) << via_legacy.status();
  EXPECT_EQ(via_legacy->content, content);
}

// Whole-file Gets consult the cache but never populate it: one large
// download must not flush a streaming working set.
TEST(RangeReadTest, WholeFileGetDoesNotPopulateCache) {
  StreamCloud cloud = MakeCloud(StreamConfig("reader"));
  const Bytes content = RandomContent(48 * 1024, 20);
  ASSERT_TRUE(cloud.client->Put("nf.bin", content).ok());

  auto got = cloud.client->Get("nf.bin");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->content, content);
  EXPECT_EQ(cloud.client->chunk_cache().stats().entries, 0u);

  // But once a range read cached chunks, a whole-file Get reuses them.
  ASSERT_TRUE(cloud.client->GetRange("nf.bin", 0, content.size()).ok());
  auto warm = cloud.client->Get("nf.bin");
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->content, content);
  EXPECT_GT(warm->chunks_from_cache, 0u);
  EXPECT_EQ(warm->chunks_decoded, 0u);
}

}  // namespace
}  // namespace cyrus
