#include <gtest/gtest.h>

#include <map>

#include "src/chunker/chunker.h"
#include "src/chunker/rabin.h"
#include "src/crypto/sha1.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

Bytes RandomData(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

// --- Rabin fingerprint ---

TEST(RabinTest, DeterministicForSameContent) {
  const Bytes data = RandomData(1000, 1);
  EXPECT_EQ(RabinFingerprint::Of(data), RabinFingerprint::Of(data));
}

TEST(RabinTest, DifferentContentDiffers) {
  Bytes a = RandomData(1000, 1);
  Bytes b = a;
  b[999] ^= 1;
  EXPECT_NE(RabinFingerprint::Of(a), RabinFingerprint::Of(b));
}

TEST(RabinTest, WindowProperty) {
  // The fingerprint depends only on the last `window` bytes: two streams
  // with different prefixes but identical suffixes of window length agree.
  const size_t window = 16;
  Bytes suffix = RandomData(window, 7);

  RabinFingerprint a(window);
  RabinFingerprint b(window);
  for (uint8_t byte : RandomData(500, 2)) {
    a.Roll(byte);
  }
  for (uint8_t byte : RandomData(300, 3)) {
    b.Roll(byte);
  }
  uint64_t fa = 0, fb = 0;
  for (uint8_t byte : suffix) {
    fa = a.Roll(byte);
    fb = b.Roll(byte);
  }
  EXPECT_EQ(fa, fb);
}

TEST(RabinTest, ResetRestoresInitialState) {
  RabinFingerprint rf(8);
  const Bytes data = RandomData(100, 4);
  std::vector<uint64_t> first;
  for (uint8_t b : data) {
    first.push_back(rf.Roll(b));
  }
  rf.Reset();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(rf.Roll(data[i]), first[i]);
  }
}

TEST(RabinTest, ZeroPrefixDoesNotChangeFingerprint) {
  // The window starts as zeros, so leading zero bytes keep fp == 0.
  RabinFingerprint rf(8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rf.Roll(0), 0u);
  }
}

// --- Chunker ---

TEST(ChunkerTest, RejectsBadOptions) {
  ChunkerOptions o = ChunkerOptions::ForTesting();
  o.modulus = 0;
  EXPECT_FALSE(Chunker::Create(o).ok());

  o = ChunkerOptions::ForTesting();
  o.residue = o.modulus;
  EXPECT_FALSE(Chunker::Create(o).ok());

  o = ChunkerOptions::ForTesting();
  o.window_size = o.min_chunk_size + 1;
  EXPECT_FALSE(Chunker::Create(o).ok());

  o = ChunkerOptions::ForTesting();
  o.min_chunk_size = o.max_chunk_size + 1;
  EXPECT_FALSE(Chunker::Create(o).ok());
}

TEST(ChunkerTest, EmptyInputYieldsNoChunks) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  EXPECT_TRUE(chunker->Split({}).empty());
}

TEST(ChunkerTest, ChunksTileTheInput) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  const Bytes data = RandomData(100 * 1024, 5);
  const auto chunks = chunker->Split(data);
  ASSERT_FALSE(chunks.empty());
  size_t expected_offset = 0;
  for (const ChunkSpan& c : chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    EXPECT_GT(c.size, 0u);
    expected_offset += c.size;
  }
  EXPECT_EQ(expected_offset, data.size());
}

TEST(ChunkerTest, RespectsMinAndMaxSizes) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  const Bytes data = RandomData(200 * 1024, 6);
  const auto chunks = chunker->Split(data);
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_LE(chunks[i].size, chunker->options().max_chunk_size);
    if (i + 1 < chunks.size()) {  // the final chunk may be short
      EXPECT_GE(chunks[i].size, chunker->options().min_chunk_size);
    }
  }
}

TEST(ChunkerTest, AverageChunkSizeNearModulus) {
  ChunkerOptions o;
  o.modulus = 4096;
  o.min_chunk_size = 256;
  o.max_chunk_size = 64 * 1024;
  o.window_size = 48;
  auto chunker = Chunker::Create(o);
  ASSERT_TRUE(chunker.ok());
  const Bytes data = RandomData(2 * 1024 * 1024, 7);
  const auto chunks = chunker->Split(data);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  // Content-defined chunking gives roughly exponential spacing with mean
  // ~modulus (plus the min-size offset); accept a generous band.
  EXPECT_GT(avg, o.modulus * 0.5);
  EXPECT_LT(avg, o.modulus * 2.5);
}

TEST(ChunkerTest, DeterministicSplit) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  const Bytes data = RandomData(64 * 1024, 8);
  const auto a = chunker->Split(data);
  const auto b = chunker->Split(data);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(ChunkerTest, LocalEditOnlyChangesNearbyChunks) {
  // The deduplication property (paper §5.1): flipping one byte must leave
  // chunk ids away from the edit untouched.
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  Bytes data = RandomData(256 * 1024, 9);

  auto ids = [&](const Bytes& d) {
    std::vector<Sha1Digest> out;
    for (const ChunkSpan& c : chunker->Split(d)) {
      out.push_back(Sha1::Hash(ByteSpan(d.data() + c.offset, c.size)));
    }
    return out;
  };

  const auto before = ids(data);
  data[data.size() / 2] ^= 0xFF;
  const auto after = ids(data);

  std::map<std::string, int> counts;
  for (const auto& id : before) {
    counts[id.ToHex()]++;
  }
  size_t shared = 0;
  for (const auto& id : after) {
    auto it = counts.find(id.ToHex());
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  // Almost all chunks survive the edit.
  EXPECT_GE(shared + 3, after.size());
  EXPECT_GT(shared, after.size() / 2);
}

TEST(ChunkerTest, InsertionPreservesTrailingChunks) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  Bytes data = RandomData(128 * 1024, 10);

  Bytes edited = data;
  const Bytes insertion = RandomData(1000, 11);
  edited.insert(edited.begin() + 1024, insertion.begin(), insertion.end());

  auto hash_chunks = [&](const Bytes& d) {
    std::vector<std::string> out;
    for (const ChunkSpan& c : chunker->Split(d)) {
      out.push_back(Sha1::Hash(ByteSpan(d.data() + c.offset, c.size)).ToHex());
    }
    return out;
  };
  const auto before = hash_chunks(data);
  const auto after = hash_chunks(edited);

  // The suffix far beyond the insertion point re-synchronizes: the last
  // chunks of both versions coincide.
  ASSERT_GE(before.size(), 2u);
  ASSERT_GE(after.size(), 2u);
  EXPECT_EQ(before.back(), after.back());
}

TEST(ChunkerTest, MaxSizeForcedBoundaryOnConstantData) {
  // Constant data never triggers a content boundary (fp stays fixed), so
  // every chunk must be exactly max_chunk_size except the tail.
  ChunkerOptions o = ChunkerOptions::ForTesting();
  auto chunker = Chunker::Create(o);
  ASSERT_TRUE(chunker.ok());
  const Bytes data(3 * o.max_chunk_size + 17, 0xAB);
  const auto chunks = chunker->Split(data);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(chunks[i].size, o.max_chunk_size);
  }
  EXPECT_EQ(chunks.back().size, 17u);
}

TEST(ChunkerTest, SingleByteInput) {
  auto chunker = Chunker::Create(ChunkerOptions::ForTesting());
  ASSERT_TRUE(chunker.ok());
  const Bytes data = {0x01};
  const auto chunks = chunker->Split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].size, 1u);
}

}  // namespace
}  // namespace cyrus
