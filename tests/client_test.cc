// End-to-end tests of CyrusClient against simulated heterogeneous CSPs.
#include <gtest/gtest.h>

#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/meta/metadata.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 5;

struct TestCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

CyrusConfig SmallConfig(std::string client_id = "device-1") {
  CyrusConfig config;
  config.client_id = std::move(client_id);
  config.key_string = "test key material";
  config.t = 2;
  config.epsilon = 1e-4;
  config.default_failure_prob = 0.01;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  return config;
}

// Builds a fresh client over existing CSPs (or new ones if none given).
TestCloud MakeCloud(CyrusConfig config = SmallConfig(),
                    std::vector<std::shared_ptr<SimulatedCsp>> csps = {}) {
  TestCloud cloud;
  if (csps.empty()) {
    for (int i = 0; i < kNumCsps; ++i) {
      SimulatedCspOptions o;
      o.id = "csp" + std::to_string(i);
      o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
      cloud.csps.push_back(std::make_shared<SimulatedCsp>(o));
    }
  } else {
    cloud.csps = std::move(csps);
  }
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (size_t i = 0; i < cloud.csps.size(); ++i) {
    CspProfile profile;
    profile.rtt_ms = 100 + 10.0 * i;
    profile.download_bytes_per_sec = (i < 2) ? 15e6 : 2e6;
    profile.upload_bytes_per_sec = profile.download_bytes_per_sec / 2;
    auto added = cloud.client->AddCsp(cloud.csps[i], profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(ClientTest, CreateRejectsBadConfig) {
  CyrusConfig bad = SmallConfig();
  bad.t = 0;
  EXPECT_FALSE(CyrusClient::Create(bad).ok());
  bad = SmallConfig();
  bad.epsilon = 2.0;
  EXPECT_FALSE(CyrusClient::Create(bad).ok());
  bad = SmallConfig();
  bad.key_string.clear();
  EXPECT_FALSE(CyrusClient::Create(bad).ok());
}

TEST(ClientTest, AddCspRejectsBadToken) {
  TestCloud cloud = MakeCloud();
  auto extra = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"extra"});
  auto added = cloud.client->AddCsp(extra, CspProfile{}, Credentials{"wrong"});
  EXPECT_EQ(added.status().code(), StatusCode::kPermissionDenied);
}

TEST(ClientTest, PutGetRoundTrip) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(20 * 1024, 1);
  auto put = cloud.client->Put("report.pdf", content);
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_GT(put->total_chunks, 0u);
  EXPECT_EQ(put->new_chunks, put->total_chunks);
  EXPECT_EQ(put->version_id, ComputeVersionId(Sha1::Hash(content), Sha1Digest{}, "report.pdf"));

  auto get = cloud.client->Get("report.pdf");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_FALSE(get->had_conflicts);
}

TEST(ClientTest, GetMissingFileFails) {
  TestCloud cloud = MakeCloud();
  EXPECT_EQ(cloud.client->Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(ClientTest, EmptyFileRoundTrips) {
  TestCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("empty", Bytes{}).ok());
  auto get = cloud.client->Get("empty");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_TRUE(get->content.empty());
}

TEST(ClientTest, UnchangedPutIsNoop) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(4096, 2);
  ASSERT_TRUE(cloud.client->Put("f", content).ok());
  auto again = cloud.client->Put("f", content);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->unchanged);
  EXPECT_EQ(again->transfer.records.size(), 0u);
}

TEST(ClientTest, NoSingleCspCanReconstruct) {
  // The privacy core: with t = 2, no single CSP's objects contain enough
  // to recover any chunk, and none of the stored bytes appear verbatim.
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(8 * 1024, 3);
  ASSERT_TRUE(cloud.client->Put("secret", content).ok());
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("");
    ASSERT_TRUE(listing.ok());
    for (const ObjectInfo& object : *listing) {
      auto data = csp->Download(object.name);
      ASSERT_TRUE(data.ok());
      if (data->size() < 16) {
        continue;
      }
      // No 16-byte window of any stored object appears in the plaintext.
      const Bytes window(data->begin(), data->begin() + 16);
      auto it = std::search(content.begin(), content.end(), window.begin(), window.end());
      EXPECT_EQ(it, content.end()) << "plaintext leaked to " << csp->id();
    }
  }
}

TEST(ClientTest, SharesSpreadAcrossAtLeastNCsps) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(16 * 1024, 4);
  auto put = cloud.client->Put("f", content);
  ASSERT_TRUE(put.ok());
  size_t csps_holding_data = 0;
  for (const auto& csp : cloud.csps) {
    if (csp->used_bytes() > 0) {
      ++csps_holding_data;
    }
  }
  EXPECT_GE(csps_holding_data, put->n);
}

TEST(ClientTest, DeduplicationSkipsStoredChunks) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(32 * 1024, 5);
  ASSERT_TRUE(cloud.client->Put("original", content).ok());
  uint64_t bytes_after_first = 0;
  for (const auto& csp : cloud.csps) {
    bytes_after_first += csp->used_bytes();
  }
  // The same bytes under a different name: all chunks dedup.
  auto put = cloud.client->Put("copy", content);
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->new_chunks, 0u);
  EXPECT_EQ(put->dedup_chunks, put->total_chunks);
  uint64_t bytes_after_second = 0;
  for (const auto& csp : cloud.csps) {
    bytes_after_second += csp->used_bytes();
  }
  // Only metadata was added - far less than re-scattering the shares
  // (which would have stored ~2x the content again under (t=2, n=4)).
  // The envelope carries one 20-byte digest per placed share since
  // metadata v3, so it is bigger than the pre-digest format but still
  // nowhere near share bytes.
  EXPECT_LT(bytes_after_second - bytes_after_first, content.size());
  EXPECT_EQ(put->uploaded_share_bytes, 0u);
  // And the copy still reads back correctly.
  auto get = cloud.client->Get("copy");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, PartialEditOnlyUploadsChangedChunks) {
  TestCloud cloud = MakeCloud();
  Bytes content = RandomContent(64 * 1024, 6);
  ASSERT_TRUE(cloud.client->Put("doc", content).ok());
  content[content.size() / 2] ^= 0xFF;  // one-byte edit
  auto put = cloud.client->Put("doc", content);
  ASSERT_TRUE(put.ok());
  EXPECT_GT(put->dedup_chunks, 0u);
  EXPECT_LE(put->new_chunks, 3u);
  auto get = cloud.client->Get("doc");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, VersioningAndRestore) {
  TestCloud cloud = MakeCloud();
  const Bytes v1 = RandomContent(4096, 7);
  const Bytes v2 = RandomContent(5000, 8);
  cloud.client->set_time(1.0);
  ASSERT_TRUE(cloud.client->Put("doc", v1).ok());
  cloud.client->set_time(2.0);
  ASSERT_TRUE(cloud.client->Put("doc", v2).ok());

  auto versions = cloud.client->Versions("doc");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  EXPECT_EQ((*versions)[0]->content_id, Sha1::Hash(v2));
  EXPECT_EQ((*versions)[1]->content_id, Sha1::Hash(v1));

  // Current head is v2; the old version remains retrievable.
  auto current = cloud.client->Get("doc");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->content, v2);
  auto old_version = cloud.client->GetVersion("doc", (*versions)[1]->id);
  ASSERT_TRUE(old_version.ok());
  EXPECT_EQ(old_version->content, v1);
}

TEST(ClientTest, DeleteHidesButPreservesHistory) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(4096, 9);
  cloud.client->set_time(1.0);
  ASSERT_TRUE(cloud.client->Put("doc", content).ok());
  cloud.client->set_time(2.0);
  ASSERT_TRUE(cloud.client->Delete("doc").ok());

  EXPECT_EQ(cloud.client->Get("doc").status().code(), StatusCode::kNotFound);
  auto listing = cloud.client->List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->empty());

  // Undelete: the history survives and the old content is retrievable.
  auto versions = cloud.client->Versions("doc");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 2u);
  auto restored = cloud.client->GetVersion("doc", (*versions)[1]->id);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->content, content);
}

TEST(ClientTest, DeleteMissingFileFails) {
  TestCloud cloud = MakeCloud();
  EXPECT_EQ(cloud.client->Delete("ghost").code(), StatusCode::kNotFound);
}

TEST(ClientTest, ListFiltersAndDescribes) {
  TestCloud cloud = MakeCloud();
  cloud.client->set_time(5.0);
  ASSERT_TRUE(cloud.client->Put("docs/a.txt", RandomContent(1000, 10)).ok());
  ASSERT_TRUE(cloud.client->Put("docs/b.txt", RandomContent(2000, 11)).ok());
  ASSERT_TRUE(cloud.client->Put("pics/c.jpg", RandomContent(3000, 12)).ok());

  auto docs = cloud.client->List("docs/");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 2u);
  EXPECT_EQ((*docs)[0].name, "docs/a.txt");
  EXPECT_EQ((*docs)[0].size, 1000u);
  EXPECT_DOUBLE_EQ((*docs)[0].modified_time, 5.0);
  EXPECT_FALSE((*docs)[0].conflicted);

  auto all = cloud.client->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST(ClientTest, SecondClientSeesFirstClientsFiles) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(12 * 1024, 13);
  ASSERT_TRUE(cloud.client->Put("shared.doc", content).ok());

  // A second device with the same key string over the same CSP accounts.
  TestCloud device2 = MakeCloud(SmallConfig("device-2"), cloud.csps);
  auto get = device2.client->Get("shared.doc");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, WrongKeyCannotReadData) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(8 * 1024, 14);
  ASSERT_TRUE(cloud.client->Put("private", content).ok());

  CyrusConfig config = SmallConfig("intruder");
  config.key_string = "some other key";
  TestCloud intruder = MakeCloud(std::move(config), cloud.csps);
  // With a different key the metadata shares do not even decode into valid
  // metadata, so the file is invisible (and certainly unreadable).
  auto get = intruder.client->Get("private");
  EXPECT_FALSE(get.ok());
}

TEST(ClientTest, RecoverRebuildsStateFromClouds) {
  TestCloud cloud = MakeCloud();
  const Bytes a = RandomContent(10 * 1024, 15);
  const Bytes b = RandomContent(6 * 1024, 16);
  ASSERT_TRUE(cloud.client->Put("a", a).ok());
  ASSERT_TRUE(cloud.client->Put("b", b).ok());

  // Fresh device: empty local state, then recover(s).
  TestCloud fresh = MakeCloud(SmallConfig("fresh-device"), cloud.csps);
  ASSERT_TRUE(fresh.client->Recover().ok());
  EXPECT_EQ(fresh.client->tree().size(), cloud.client->tree().size());
  EXPECT_EQ(fresh.client->chunk_table().size(), cloud.client->chunk_table().size());
  auto get = fresh.client->Get("a");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, a);
}

TEST(ClientTest, RecoverWorksWithDifferentCspRegistrationOrder) {
  // Registry indices are client-local; metadata carries stable connector
  // names. A fresh device registering the same accounts in a different
  // order must still resolve every share location.
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(12 * 1024, 70);
  ASSERT_TRUE(cloud.client->Put("portable", content).ok());

  std::vector<std::shared_ptr<SimulatedCsp>> reversed(cloud.csps.rbegin(),
                                                      cloud.csps.rend());
  TestCloud fresh = MakeCloud(SmallConfig("reordered-device"), reversed);
  ASSERT_TRUE(fresh.client->Recover().ok());
  auto get = fresh.client->Get("portable");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, FreshDeviceRecoversAfterMigration) {
  // After a CSP removal and lazy migration, the re-published metadata must
  // be readable by a brand-new device (no stale share objects may survive
  // to poison the decode).
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(10 * 1024, 71);
  ASSERT_TRUE(cloud.client->Put("survivor", content).ok());
  ASSERT_TRUE(cloud.client->RemoveCsp(0).ok());
  auto migrated = cloud.client->Get("survivor");
  ASSERT_TRUE(migrated.ok()) << migrated.status();

  std::vector<std::shared_ptr<SimulatedCsp>> remaining(cloud.csps.begin() + 1,
                                                       cloud.csps.end());
  TestCloud fresh = MakeCloud(SmallConfig("post-migration-device"), remaining);
  ASSERT_TRUE(fresh.client->Recover().ok());
  auto get = fresh.client->Get("survivor");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, ConcurrentEditsConflictDetectedAndResolved) {
  // Two devices sync, then both edit the same file: Figure 8's diverged-
  // versions conflict must surface on the next download.
  TestCloud cloud = MakeCloud();
  const Bytes base = RandomContent(8 * 1024, 17);
  cloud.client->set_time(1.0);
  ASSERT_TRUE(cloud.client->Put("shared", base).ok());

  TestCloud device2 = MakeCloud(SmallConfig("device-2"), cloud.csps);
  ASSERT_TRUE(device2.client->SyncMetadata().ok());

  const Bytes edit1 = RandomContent(8 * 1024, 18);
  const Bytes edit2 = RandomContent(8 * 1024, 19);
  cloud.client->set_time(2.0);
  device2.client->set_time(2.5);
  ASSERT_TRUE(cloud.client->Put("shared", edit1).ok());
  auto put2 = device2.client->Put("shared", edit2);
  ASSERT_TRUE(put2.ok());

  // Device 1 downloads: it sees both heads, flags the conflict, and serves
  // the newest edit.
  auto get = cloud.client->Get("shared");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_TRUE(get->had_conflicts);
  ASSERT_EQ(get->conflicts.size(), 1u);
  EXPECT_EQ(get->conflicts[0].type, ConflictType::kDivergedVersions);
  EXPECT_EQ(get->content, edit2);  // newest by mtime

  // Resolve: keep edit2; edit1 is renamed, not lost.
  ASSERT_TRUE(cloud.client->ResolveConflict("shared", put2->version_id).ok());
  auto after = cloud.client->Get("shared");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->had_conflicts);
  EXPECT_EQ(after->content, edit2);

  auto listing = cloud.client->List("");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);  // "shared" + the renamed conflict copy
  bool found_rename = false;
  for (const FileListing& f : *listing) {
    if (f.name != "shared") {
      found_rename = true;
      auto rescued = cloud.client->Get(f.name);
      ASSERT_TRUE(rescued.ok());
      EXPECT_EQ(rescued->content, edit1);
    }
  }
  EXPECT_TRUE(found_rename);
}

TEST(ClientTest, SameNameCreationConflict) {
  // Figure 8 left: both devices create the same name before ever syncing.
  TestCloud cloud = MakeCloud();
  TestCloud device2 = MakeCloud(SmallConfig("device-2"), cloud.csps);
  cloud.client->set_time(1.0);
  device2.client->set_time(1.5);
  ASSERT_TRUE(cloud.client->Put("new.txt", RandomContent(2048, 20)).ok());
  ASSERT_TRUE(device2.client->Put("new.txt", RandomContent(2048, 21)).ok());

  auto get = cloud.client->Get("new.txt");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_TRUE(get->had_conflicts);
  ASSERT_EQ(get->conflicts.size(), 1u);
  EXPECT_EQ(get->conflicts[0].type, ConflictType::kSameName);
}

TEST(ClientTest, DownloadSurvivesFewerThanNMinusTFailures) {
  // With (t=2, n>=3), one CSP outage must not block reads.
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(16 * 1024, 22);
  auto put = cloud.client->Put("resilient", content);
  ASSERT_TRUE(put.ok());
  ASSERT_GE(put->n, 3u);

  cloud.csps[0]->set_available(false);
  auto get = cloud.client->Get("resilient");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, LazyMigrationAfterCspRemoval) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(16 * 1024, 23);
  ASSERT_TRUE(cloud.client->Put("doc", content).ok());

  // Remove a CSP that holds shares; the next Get migrates them.
  int victim = -1;
  for (size_t i = 0; i < cloud.csps.size(); ++i) {
    if (cloud.csps[i]->used_bytes() > 0) {
      victim = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(cloud.client->RemoveCsp(victim).ok());

  auto get = cloud.client->Get("doc");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_GT(get->migrated_shares, 0u);

  // After migration no chunk lists the removed CSP any more, and a second
  // download performs no further migrations.
  EXPECT_TRUE(cloud.client->chunk_table().ChunksOnCsp(victim).empty());
  auto second = cloud.client->Get("doc");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->migrated_shares, 0u);
}

TEST(ClientTest, FailedCspRecoversAndServesAgain) {
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(8 * 1024, 24);
  ASSERT_TRUE(cloud.client->Put("doc", content).ok());
  ASSERT_TRUE(cloud.client->MarkCspFailed(1).ok());
  ASSERT_TRUE(cloud.client->Get("doc").ok());
  ASSERT_TRUE(cloud.client->MarkCspRecovered(1).ok());
  ASSERT_TRUE(cloud.client->registry().state(1).ok());
  EXPECT_EQ(*cloud.client->registry().state(1), CspState::kActive);
  auto get = cloud.client->Get("doc");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, CurrentNRespondsToEpsilon) {
  CyrusConfig strict = SmallConfig();
  strict.epsilon = 1e-7;  // with p = 0.01 and 5 CSPs this forces n = 5
  TestCloud strict_cloud = MakeCloud(std::move(strict));
  CyrusConfig loose = SmallConfig();
  loose.epsilon = 1e-2;
  TestCloud loose_cloud = MakeCloud(std::move(loose));
  auto n_strict = strict_cloud.client->CurrentN();
  auto n_loose = loose_cloud.client->CurrentN();
  ASSERT_TRUE(n_strict.ok()) << n_strict.status();
  ASSERT_TRUE(n_loose.ok());
  EXPECT_GT(*n_strict, *n_loose);
}

TEST(ClientTest, ClusterAwarePlacementRespectsClusters) {
  CyrusConfig config = SmallConfig();
  config.cluster_aware = true;
  TestCloud cloud = MakeCloud(std::move(config));
  // CSPs 0 and 1 share platform 0; 2, 3, 4 are platforms 1, 2, 3.
  ASSERT_TRUE(cloud.client->AssignClusters({0, 0, 1, 2, 3}).ok());
  const Bytes content = RandomContent(16 * 1024, 25);
  auto put = cloud.client->Put("doc", content);
  ASSERT_TRUE(put.ok()) << put.status();

  // No chunk may have shares on both CSP 0 and CSP 1.
  for (const FileVersion* v : cloud.client->tree().AllVersions()) {
    for (const ChunkRecord& chunk : v->chunks) {
      bool on0 = false, on1 = false;
      for (const ShareLocation& loc : v->SharesOfChunk(chunk.id)) {
        on0 |= loc.csp == 0;
        on1 |= loc.csp == 1;
      }
      EXPECT_FALSE(on0 && on1) << "chunk on both CSPs of platform 0";
    }
  }
}

TEST(ClientTest, TransferAggregatorReportsFileComplete) {
  TestCloud cloud = MakeCloud();
  std::vector<std::string> completed;
  cloud.client->aggregator().set_on_file_complete(
      [&](const std::string& f) { completed.push_back(f); });
  ASSERT_TRUE(cloud.client->Put("tracked", RandomContent(8 * 1024, 26)).ok());
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0], "tracked");
}

TEST(ClientTest, UploadFailureFallsBackToAnotherCsp) {
  TestCloud cloud = MakeCloud();
  // Take one CSP down *before* the upload; Put must still succeed by
  // routing its shares elsewhere, and the CSP gets marked failed.
  cloud.csps[2]->set_available(false);
  const Bytes content = RandomContent(16 * 1024, 27);
  auto put = cloud.client->Put("doc", content);
  ASSERT_TRUE(put.ok()) << put.status();
  auto get = cloud.client->Get("doc");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_EQ(cloud.csps[2]->used_bytes(), 0u);
}

TEST(ClientTest, QuotaFullCspSkippedButNotFailed) {
  // A provider at quota refuses new shares but is not an outage: the
  // client must route the share elsewhere and keep the CSP active (its
  // existing shares are still readable).
  TestCloud cloud = MakeCloud();
  // Fill csp3 almost completely.
  SimulatedCspOptions tiny;
  tiny.id = "tiny";
  tiny.quota_bytes = 100;
  auto small_csp = std::make_shared<SimulatedCsp>(tiny);
  CspProfile profile;
  profile.download_bytes_per_sec = 2e6;
  profile.upload_bytes_per_sec = 1e6;
  auto added = cloud.client->AddCsp(small_csp, profile, Credentials{"token"});
  ASSERT_TRUE(added.ok());

  const Bytes content = RandomContent(32 * 1024, 60);
  auto put = cloud.client->Put("big", content);
  ASSERT_TRUE(put.ok()) << put.status();
  auto get = cloud.client->Get("big");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  // The tiny CSP stays active despite refusing shares.
  EXPECT_EQ(*cloud.client->registry().state(*added), CspState::kActive);
}

TEST(ClientTest, NoChunkStoresTwoSharesOnOneCsp) {
  // Even with failovers in play, a chunk must never have two shares on the
  // same provider (that would halve the effective privacy threshold).
  TestCloud cloud = MakeCloud();
  cloud.csps[1]->set_available(false);  // force failover paths
  const Bytes content = RandomContent(48 * 1024, 61);
  auto put = cloud.client->Put("doc", content);
  ASSERT_TRUE(put.ok()) << put.status();
  for (const FileVersion* v : cloud.client->tree().AllVersions()) {
    for (const ChunkRecord& chunk : v->chunks) {
      std::set<int> csps;
      for (const ShareLocation& loc : v->SharesOfChunk(chunk.id)) {
        EXPECT_TRUE(csps.insert(loc.csp).second)
            << "chunk " << chunk.id.ToHex() << " has two shares on CSP " << loc.csp;
      }
    }
  }
}

TEST(ClientTest, CorruptedShareDetectedCorrectedAndRepaired) {
  // A provider silently corrupts a stored share (bit rot / tampering). The
  // download detects the bad decode via the chunk hash, recovers through
  // the error-correcting decode, and rewrites the corrupted share in place.
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(8 * 1024, 62);
  auto put = cloud.client->Put("fragile", content);
  ASSERT_TRUE(put.ok());
  ASSERT_GE(put->n, 4u);  // e_max >= 1 for t = 2

  // Corrupt every data-share object on one CSP that holds shares.
  int corrupted_csp = -1;
  for (size_t i = 0; i < cloud.csps.size() && corrupted_csp < 0; ++i) {
    auto listing = cloud.csps[i]->List("");
    ASSERT_TRUE(listing.ok());
    for (const ObjectInfo& object : *listing) {
      if (!StartsWith(object.name, "meta-")) {
        ASSERT_TRUE(cloud.csps[i]->CorruptObject(object.name).ok());
        corrupted_csp = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(corrupted_csp, 0);

  auto get = cloud.client->Get("fragile");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);

  // The corrupted shares were repaired in place: a second read decodes
  // cleanly even if forced through the previously corrupted CSP.
  auto again = cloud.client->Get("fragile");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->content, content);
}

TEST(ClientTest, ImportForeignObjectPullsPlaintextIntoCyrus) {
  // The trial's most-requested feature (§7.5): a file the user already
  // keeps in plaintext on one provider becomes a CYRUS file; the plaintext
  // original is deleted only after the CYRUS copy is durable.
  TestCloud cloud = MakeCloud();
  const Bytes legacy = RandomContent(20 * 1024, 63);
  ASSERT_TRUE(cloud.csps[0]->Upload("vacation.jpg", legacy).ok());

  auto imported = cloud.client->ImportForeignObject(0, "vacation.jpg",
                                                    "photos/vacation.jpg",
                                                    /*delete_original=*/true);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_GT(imported->new_chunks, 0u);
  // The plaintext original is gone; the CYRUS copy reads back bit-exact.
  EXPECT_EQ(cloud.csps[0]->Download("vacation.jpg").status().code(),
            StatusCode::kNotFound);
  auto get = cloud.client->Get("photos/vacation.jpg");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->content, legacy);
}

TEST(ClientTest, ImportMissingObjectFails) {
  TestCloud cloud = MakeCloud();
  EXPECT_EQ(cloud.client->ImportForeignObject(0, "ghost", "g").status().code(),
            StatusCode::kNotFound);
}

TEST(ClientTest, RebalanceMetadataCoversNewCsp) {
  // A CSP added after some uploads holds no metadata shares until the user
  // opts into rebalancing (paper §5.5); afterwards a device using only the
  // *newest* t CSPs plus one old one can still recover.
  TestCloud cloud = MakeCloud();
  const Bytes content = RandomContent(8 * 1024, 64);
  ASSERT_TRUE(cloud.client->Put("doc", content).ok());

  auto newcomer = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"newcomer"});
  CspProfile profile;
  profile.download_bytes_per_sec = 2e6;
  profile.upload_bytes_per_sec = 1e6;
  ASSERT_TRUE(cloud.client->AddCsp(newcomer, profile, Credentials{"token"}).ok());
  EXPECT_EQ(newcomer->used_bytes(), 0u);  // nothing there yet

  ASSERT_TRUE(cloud.client->RebalanceMetadata().ok());
  EXPECT_GT(newcomer->used_bytes(), 0u);  // now holds metadata shares
  auto listing = newcomer->List("meta-");
  ASSERT_TRUE(listing.ok());
  EXPECT_FALSE(listing->empty());
}

TEST(ClientTest, PutCreatesTheScatterCodecOncePerFile) {
  // The dispersal matrix depends only on (key, t, n); building it per chunk
  // was pure per-chunk overhead. A multi-chunk Put must construct exactly
  // one codec, and a second Put constructs exactly one more.
  obs::MetricsRegistry registry;
  CyrusConfig config = SmallConfig();
  config.metrics = &registry;
  TestCloud cloud = MakeCloud(std::move(config));
  obs::Counter* creates = registry.GetCounter("cyrus_client_codec_creates_total", {},
                                              "Secret-sharing codecs constructed for "
                                              "chunk scatter (one per Put, not per chunk)");
  ASSERT_EQ(creates->value(), 0u);

  const Bytes content = RandomContent(24 * 1024, 77);  // many ~1 KB chunks
  auto put = cloud.client->Put("many-chunks", content);
  ASSERT_TRUE(put.ok()) << put.status();
  ASSERT_GT(put->new_chunks, 4u) << "content did not split into enough chunks";
  EXPECT_EQ(creates->value(), 1u);

  ASSERT_TRUE(cloud.client->Put("more-chunks", RandomContent(16 * 1024, 78)).ok());
  EXPECT_EQ(creates->value(), 2u);

  auto get = cloud.client->Get("many-chunks");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(ClientTest, PipelineMetricsTrackSubmittedChunks) {
  obs::MetricsRegistry registry;
  CyrusConfig config = SmallConfig();
  config.metrics = &registry;
  config.pipeline_window_chunks = 2;
  TestCloud cloud = MakeCloud(std::move(config));
  // The pipeline instruments are process-wide (they live in the default
  // registry inside thread_pool.cc's statics), so assert on deltas.
  obs::Counter* tasks = obs::MetricsRegistry::Default().GetCounter(
      "cyrus_pipeline_tasks_total", {}, "Tasks admitted into ordered pipelines");
  const uint64_t before = tasks->value();
  auto put = cloud.client->Put("pipelined", RandomContent(20 * 1024, 91));
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_GE(tasks->value() - before, put->total_chunks);
}

TEST(ClientTest, WindowOfOneMatchesSequentialSemantics) {
  // pipeline_window_chunks = 1 degrades to strictly sequential chunk
  // handling; the round trip and dedup accounting must be unchanged.
  CyrusConfig config = SmallConfig();
  config.pipeline_window_chunks = 1;
  TestCloud cloud = MakeCloud(std::move(config));
  Bytes content = RandomContent(12 * 1024, 55);
  // Repeat a block so in-file dedup triggers.
  Bytes doubled = content;
  doubled.insert(doubled.end(), content.begin(), content.end());
  auto put = cloud.client->Put("doubled", doubled);
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_GT(put->dedup_chunks, 0u);
  auto get = cloud.client->Get("doubled");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, doubled);
}

TEST(ClientTest, RejectsZeroPipelineWindow) {
  CyrusConfig config = SmallConfig();
  config.pipeline_window_chunks = 0;
  EXPECT_FALSE(CyrusClient::Create(std::move(config)).ok());
}

TEST(ClientTest, MetadataIsSecretSharedNotPlaintext) {
  TestCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("visible-name.txt", RandomContent(2048, 28)).ok());
  // No CSP object may contain the file name in cleartext.
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("");
    ASSERT_TRUE(listing.ok());
    for (const ObjectInfo& object : *listing) {
      EXPECT_EQ(object.name.find("visible-name"), std::string::npos);
      auto data = csp->Download(object.name);
      ASSERT_TRUE(data.ok());
      const std::string text = ToString(*data);
      EXPECT_EQ(text.find("visible-name"), std::string::npos)
          << "file name leaked into " << object.name << " on " << csp->id();
    }
  }
}

}  // namespace
}  // namespace cyrus
