#include <gtest/gtest.h>

#include "src/cloud/availability.h"
#include "src/cloud/bandwidth.h"
#include "src/cloud/registry.h"
#include "src/cloud/simulated_csp.h"
#include "src/util/bytes.h"

namespace cyrus {
namespace {

SimulatedCspOptions Opts(std::string id, NamingPolicy naming = NamingPolicy::kNameKeyed) {
  SimulatedCspOptions o;
  o.id = std::move(id);
  o.naming = naming;
  return o;
}

// --- SimulatedCsp ---

TEST(SimulatedCspTest, RequiresAuthentication) {
  SimulatedCsp csp(Opts("dropbox"));
  EXPECT_EQ(csp.Upload("a", ToBytes("x")).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(csp.Authenticate(Credentials{"wrong"}).code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  EXPECT_TRUE(csp.Upload("a", ToBytes("x")).ok());
}

TEST(SimulatedCspTest, UploadDownloadRoundTrip) {
  SimulatedCsp csp(Opts("dropbox"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("share-1", ToBytes("payload")).ok());
  auto data = csp.Download("share-1");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "payload");
}

TEST(SimulatedCspTest, DownloadMissingIsNotFound) {
  SimulatedCsp csp(Opts("dropbox"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  EXPECT_EQ(csp.Download("nope").status().code(), StatusCode::kNotFound);
}

TEST(SimulatedCspTest, NameKeyedOverwrites) {
  // Dropbox-style: re-uploading a name replaces the object (paper §3.1).
  SimulatedCsp csp(Opts("dropbox", NamingPolicy::kNameKeyed));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("v1")).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("v2")).ok());
  EXPECT_EQ(csp.object_count(), 1u);
  EXPECT_EQ(ToString(*csp.Download("f")), "v2");
  EXPECT_EQ(csp.used_bytes(), 2u);
}

TEST(SimulatedCspTest, IdKeyedDuplicates) {
  // Google-Drive-style: same name creates a second object; List shows both.
  SimulatedCsp csp(Opts("gdrive", NamingPolicy::kIdKeyed));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("v1")).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("v2")).ok());
  EXPECT_EQ(csp.object_count(), 2u);
  auto listing = csp.List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
  // Download returns the newest.
  EXPECT_EQ(ToString(*csp.Download("f")), "v2");
  EXPECT_EQ(csp.used_bytes(), 4u);
}

TEST(SimulatedCspTest, ListByPrefix) {
  SimulatedCsp csp(Opts("box"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("meta-abc.0", ToBytes("m")).ok());
  ASSERT_TRUE(csp.Upload("meta-def.1", ToBytes("m")).ok());
  ASSERT_TRUE(csp.Upload("share-xyz", ToBytes("s")).ok());
  auto listing = csp.List("meta-");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
}

TEST(SimulatedCspTest, DeleteIsIdempotent) {
  SimulatedCsp csp(Opts("box"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("x")).ok());
  EXPECT_TRUE(csp.Delete("f").ok());
  EXPECT_TRUE(csp.Delete("f").ok());
  EXPECT_EQ(csp.used_bytes(), 0u);
}

TEST(SimulatedCspTest, QuotaEnforced) {
  SimulatedCspOptions o = Opts("small");
  o.quota_bytes = 10;
  SimulatedCsp csp(o);
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  EXPECT_TRUE(csp.Upload("a", ToBytes("12345")).ok());
  EXPECT_EQ(csp.Upload("b", ToBytes("1234567")).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(csp.Upload("b", ToBytes("12345")).ok());
  // Overwrite within quota is fine (same size).
  EXPECT_TRUE(csp.Upload("a", ToBytes("abcde")).ok());
}

TEST(SimulatedCspTest, OutageMakesEverythingUnavailable) {
  SimulatedCsp csp(Opts("flaky"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("x")).ok());
  csp.set_available(false);
  EXPECT_EQ(csp.Download("f").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(csp.Upload("g", ToBytes("y")).code(), StatusCode::kUnavailable);
  EXPECT_EQ(csp.List("").status().code(), StatusCode::kUnavailable);
  EXPECT_GE(csp.counters().failed_requests, 3u);
  csp.set_available(true);
  EXPECT_TRUE(csp.Download("f").ok());  // data survived the outage
}

TEST(SimulatedCspTest, CountersTrackTraffic) {
  SimulatedCsp csp(Opts("counted"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(csp.Upload("f", ToBytes("12345")).ok());
  ASSERT_TRUE(csp.Download("f").ok());
  ASSERT_TRUE(csp.List("").ok());
  EXPECT_EQ(csp.counters().uploads, 1u);
  EXPECT_EQ(csp.counters().downloads, 1u);
  EXPECT_EQ(csp.counters().lists, 1u);
  EXPECT_EQ(csp.counters().bytes_uploaded, 5u);
  EXPECT_EQ(csp.counters().bytes_downloaded, 5u);
}

TEST(SimulatedCspTest, ModifiedTimeUsesVirtualClock) {
  SimulatedCsp csp(Opts("timed"));
  ASSERT_TRUE(csp.Authenticate(Credentials{"token"}).ok());
  csp.set_time(123.0);
  ASSERT_TRUE(csp.Upload("f", ToBytes("x")).ok());
  auto listing = csp.List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_DOUBLE_EQ((*listing)[0].modified_time, 123.0);
}

// --- CspRegistry ---

TEST(CspRegistryTest, AddAndQuery) {
  CspRegistry reg;
  auto csp = std::make_shared<SimulatedCsp>(Opts("dropbox"));
  const int idx = reg.Add(csp, CspProfile{100, 2e6, 1e6, 0});
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(reg.size(), 1u);
  ASSERT_TRUE(reg.name(idx).ok());
  EXPECT_EQ(*reg.name(idx), "dropbox");
  ASSERT_TRUE(reg.profile(idx).ok());
  EXPECT_DOUBLE_EQ(reg.profile(idx)->download_bytes_per_sec, 2e6);
}

TEST(CspRegistryTest, InvalidIndexRejected) {
  CspRegistry reg;
  EXPECT_EQ(reg.connector(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.state(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(CspRegistryTest, StateTransitionsFilterActive) {
  CspRegistry reg;
  for (int i = 0; i < 3; ++i) {
    reg.Add(std::make_shared<SimulatedCsp>(Opts("csp" + std::to_string(i))),
            CspProfile{});
  }
  ASSERT_TRUE(reg.SetState(1, CspState::kFailed).ok());
  EXPECT_EQ(reg.ActiveIndices(), (std::vector<int>{0, 2}));
  ASSERT_TRUE(reg.SetState(1, CspState::kActive).ok());
  EXPECT_EQ(reg.ActiveIndices(), (std::vector<int>{0, 1, 2}));
}

TEST(CspRegistryTest, ClusterCounting) {
  CspRegistry reg;
  reg.Add(std::make_shared<SimulatedCsp>(Opts("a")), CspProfile{100, 1, 1, 0});
  reg.Add(std::make_shared<SimulatedCsp>(Opts("b")), CspProfile{100, 1, 1, 0});
  reg.Add(std::make_shared<SimulatedCsp>(Opts("c")), CspProfile{100, 1, 1, 1});
  reg.Add(std::make_shared<SimulatedCsp>(Opts("d")), CspProfile{100, 1, 1, -1});
  // clusters {0, 1} plus one unclustered CSP = 3 placement domains.
  EXPECT_EQ(reg.NumActiveClusters(), 3u);
  ASSERT_TRUE(reg.SetState(2, CspState::kRemoved).ok());
  EXPECT_EQ(reg.NumActiveClusters(), 2u);
}

// --- AvailabilityMonitor ---

TEST(AvailabilityMonitorTest, NoDataMeansZero) {
  AvailabilityMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.EstimateFailureProbability(0), 0.0);
  EXPECT_DOUBLE_EQ(monitor.MaxFailureProbability(), 0.0);
}

TEST(AvailabilityMonitorTest, ShortBlipsIgnored) {
  AvailabilityMonitor monitor(/*failure_threshold_seconds=*/3600.0);
  monitor.RecordProbe(0, 0.0, true);
  monitor.RecordProbe(0, 100.0, false);
  monitor.RecordProbe(0, 200.0, true);  // 100 s blip < 1 h threshold
  monitor.RecordProbe(0, 10000.0, true);
  EXPECT_DOUBLE_EQ(monitor.EstimateFailureProbability(0), 0.0);
  EXPECT_FALSE(monitor.IsFailed(0));
}

TEST(AvailabilityMonitorTest, LongOutageCounts) {
  AvailabilityMonitor monitor(/*failure_threshold_seconds=*/3600.0);
  monitor.RecordProbe(0, 0.0, true);
  monitor.RecordProbe(0, 1000.0, false);
  monitor.RecordProbe(0, 2000.0, false);
  monitor.RecordProbe(0, 11000.0, true);  // 10000 s outage
  const double p = monitor.EstimateFailureProbability(0);
  EXPECT_NEAR(p, 10000.0 / 11000.0, 1e-9);
}

TEST(AvailabilityMonitorTest, OngoingOutageDetected) {
  AvailabilityMonitor monitor(/*failure_threshold_seconds=*/3600.0);
  monitor.RecordProbe(0, 0.0, true);
  monitor.RecordProbe(0, 100.0, false);
  EXPECT_FALSE(monitor.IsFailed(0));  // not yet past threshold
  monitor.RecordProbe(0, 100.0 + 7200.0, false);
  EXPECT_TRUE(monitor.IsFailed(0));
  EXPECT_GT(monitor.EstimateFailureProbability(0), 0.0);
}

TEST(AvailabilityMonitorTest, MaxAcrossCsps) {
  AvailabilityMonitor monitor(/*failure_threshold_seconds=*/10.0);
  monitor.RecordProbe(0, 0.0, true);
  monitor.RecordProbe(0, 1000.0, true);  // perfectly healthy
  monitor.RecordProbe(1, 0.0, true);
  monitor.RecordProbe(1, 100.0, false);
  monitor.RecordProbe(1, 600.0, true);  // 500 s outage in 600 s
  EXPECT_NEAR(monitor.MaxFailureProbability(), 500.0 / 600.0, 1e-9);
}

// --- OutageSchedule ---

TEST(OutageScheduleTest, StationaryProbabilityMatchesDowntime) {
  OutageSchedule schedule(87.6, 1.0, Rng(7));  // 1% downtime
  EXPECT_NEAR(schedule.StationaryDownProbability(), 0.01, 1e-12);
  // Long-run empirical fraction of down samples approaches 1%.
  int down = 0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (!schedule.IsUp(i * 360.0)) {
      ++down;
    }
  }
  const double fraction = static_cast<double>(down) / kSamples;
  EXPECT_NEAR(fraction, 0.01, 0.004);
}

TEST(OutageScheduleTest, MostlyUpForLowDowntime) {
  OutageSchedule schedule(1.37, 0.5, Rng(3));  // the paper's best CSP
  int down = 0;
  for (int i = 0; i < 100000; ++i) {
    if (!schedule.IsUp(i * 600.0)) {
      ++down;
    }
  }
  EXPECT_LT(down, 200);  // ~0.0156% expected
}

TEST(PaperDowntimeTest, RangeMatchesPaper) {
  const auto& hours = PaperAnnualDowntimeHours();
  ASSERT_EQ(hours.size(), 4u);
  EXPECT_DOUBLE_EQ(hours.front(), 1.37);
  EXPECT_DOUBLE_EQ(hours.back(), 18.53);
}

// --- BandwidthEstimator ---

TEST(BandwidthEstimatorTest, DefaultUntilSamples) {
  BandwidthEstimator est;
  EXPECT_FALSE(est.HasSamples(0, TransferDirection::kDownload));
  EXPECT_DOUBLE_EQ(est.Estimate(0, TransferDirection::kDownload), 1e6);
}

TEST(BandwidthEstimatorTest, FirstSampleSetsEstimate) {
  BandwidthEstimator est;
  est.AddSample(0, TransferDirection::kDownload, 10 * 1024 * 1024, 2.0);
  EXPECT_DOUBLE_EQ(est.Estimate(0, TransferDirection::kDownload), 5.0 * 1024 * 1024);
}

TEST(BandwidthEstimatorTest, EwmaConvergesTowardNewRate) {
  BandwidthEstimator est;
  est.AddSample(0, TransferDirection::kUpload, 1 << 20, 1.0);  // 1 MiB/s
  for (int i = 0; i < 20; ++i) {
    est.AddSample(0, TransferDirection::kUpload, 4 << 20, 1.0);  // 4 MiB/s
  }
  EXPECT_NEAR(est.Estimate(0, TransferDirection::kUpload), 4.0 * (1 << 20),
              0.05 * (1 << 20));
}

TEST(BandwidthEstimatorTest, TinySamplesIgnored) {
  BandwidthEstimator est;
  est.AddSample(0, TransferDirection::kDownload, 100, 0.001);  // latency probe
  EXPECT_FALSE(est.HasSamples(0, TransferDirection::kDownload));
  est.AddSample(0, TransferDirection::kDownload, 1 << 20, 0.0);  // bad timing
  EXPECT_FALSE(est.HasSamples(0, TransferDirection::kDownload));
}

TEST(BandwidthEstimatorTest, DirectionsAndCspsAreIndependent) {
  BandwidthEstimator est;
  est.AddSample(0, TransferDirection::kDownload, 2 << 20, 1.0);
  est.AddSample(1, TransferDirection::kDownload, 8 << 20, 1.0);
  EXPECT_DOUBLE_EQ(est.Estimate(0, TransferDirection::kDownload), 2.0 * (1 << 20));
  EXPECT_DOUBLE_EQ(est.Estimate(1, TransferDirection::kDownload), 8.0 * (1 << 20));
  EXPECT_FALSE(est.HasSamples(0, TransferDirection::kUpload));
  EXPECT_EQ(est.sample_count(0, TransferDirection::kDownload), 1u);
}

}  // namespace
}  // namespace cyrus
