// Property tests for the secret-sharing codec and the full Put/Get path.
//
// Two layers of the same (t, n) threshold property:
//   - codec level: for random keys, parameters, and payload sizes, EVERY
//     t-subset of shares reconstructs the payload exactly, and every
//     (t-1)-subset is rejected (the privacy floor of paper §5.1/§7.1);
//   - client level: Put then Get is byte-identical across adversarial file
//     sizes (empty, one byte, chunk-boundary +/- 1, multi-MB) and random
//     (t, meta_t, key) configurations, with the pipelined engine underneath.
// All randomness is seeded; a failure reproduces from the case number.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/rs/galois.h"
#include "src/rs/galois_kernels.h"
#include "src/rs/secret_sharing.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Forces one kernel for a scope and restores runtime dispatch on exit, so
// a failing assertion cannot leak a forced kernel into later tests.
class ScopedKernel {
 public:
  explicit ScopedKernel(const GaloisKernels* kernels) {
    SetActiveGaloisKernelsForTest(kernels);
  }
  ~ScopedKernel() { SetActiveGaloisKernelsForTest(nullptr); }
};

// The SIMD kernels this host can run (empty on non-x86 or pre-SSSE3 CPUs).
std::vector<const GaloisKernels*> SimdKernels() {
  std::vector<const GaloisKernels*> kernels;
  for (GaloisKernelKind kind :
       {GaloisKernelKind::kSsse3, GaloisKernelKind::kAvx2}) {
    if (const GaloisKernels* k = GetGaloisKernels(kind)) {
      kernels.push_back(k);
    }
  }
  return kernels;
}

Bytes RandomContent(Rng& rng, size_t size) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

// Every size-k subset of indices [0, n), applied to `visit`. n is small
// (<= 8 here), so exhaustive enumeration is cheap.
void ForEachSubset(uint32_t n, uint32_t k,
                   const std::function<void(const std::vector<uint32_t>&)>& visit) {
  std::vector<uint32_t> subset(k);
  std::function<void(uint32_t, uint32_t)> rec = [&](uint32_t start, uint32_t depth) {
    if (depth == k) {
      visit(subset);
      return;
    }
    for (uint32_t i = start; i + (k - depth) <= n; ++i) {
      subset[depth] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

TEST(CodecPropertyTest, EveryTSubsetDecodesAndEveryTMinusOneSubsetFails) {
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(StrCat("trial ", trial));
    Rng rng(0xFACE0000u + static_cast<uint64_t>(trial));
    const uint32_t t = 1 + static_cast<uint32_t>(rng.NextBelow(4));  // 1..4
    const uint32_t n = t + static_cast<uint32_t>(rng.NextBelow(8 - t + 1));
    const std::string key = StrCat("property key ", rng.Next());
    // Sizes stress the t-row padding logic: 0, 1, t-1, t, t+1, then random.
    const size_t sizes[] = {0,     1,     static_cast<size_t>(t > 0 ? t - 1 : 0),
                            t,     t + 1, 1 + rng.NextBelow(4096)};
    auto codec = SecretSharingCodec::Create(key, t, n);
    ASSERT_TRUE(codec.ok()) << codec.status();

    for (const size_t size : sizes) {
      SCOPED_TRACE(StrCat("size ", size));
      const Bytes payload = RandomContent(rng, size);
      auto shares = codec->Encode(payload);
      ASSERT_TRUE(shares.ok()) << shares.status();
      ASSERT_EQ(shares->size(), n);

      ForEachSubset(n, t, [&](const std::vector<uint32_t>& pick) {
        std::vector<Share> subset;
        for (uint32_t i : pick) {
          subset.push_back((*shares)[i]);
        }
        auto decoded = codec->Decode(subset, payload.size());
        ASSERT_TRUE(decoded.ok()) << decoded.status();
        EXPECT_EQ(*decoded, payload);
      });
      if (t >= 1) {
        ForEachSubset(n, t - 1, [&](const std::vector<uint32_t>& pick) {
          std::vector<Share> subset;
          for (uint32_t i : pick) {
            subset.push_back((*shares)[i]);
          }
          EXPECT_FALSE(codec->Decode(subset, payload.size()).ok());
        });
      }
    }
  }
}

TEST(CodecPropertyTest, DecodingWithTheWrongKeyYieldsGarbageNotPlaintext) {
  Rng rng(0xBADC0DE);
  const Bytes payload = RandomContent(rng, 1024);
  auto codec = SecretSharingCodec::Create("right key", 2, 4);
  ASSERT_TRUE(codec.ok());
  auto shares = codec->Encode(payload);
  ASSERT_TRUE(shares.ok());
  auto wrong = SecretSharingCodec::Create("wrong key", 2, 4);
  ASSERT_TRUE(wrong.ok());
  std::vector<Share> two = {(*shares)[0], (*shares)[1]};
  auto decoded = wrong->Decode(two, payload.size());
  // The decode may "succeed" mechanically, but without the key the bytes
  // must not be the plaintext (paper §7.1: t shares alone are not enough).
  if (decoded.ok()) {
    EXPECT_NE(*decoded, payload);
  }
}

// --- Differential battery: every SIMD kernel against the scalar oracle ---
//
// The scalar kernel is the reference implementation (DESIGN.md
// "scalar-as-oracle"): whatever bytes it produces define correctness, and
// the vectorized kernels must match them bit for bit on every size and
// every pointer alignment - including the sizes that exercise only the
// scalar tail (< one vector), exactly one vector, and vector +/- 1.

constexpr size_t kAdversarialSizes[] = {0, 1, 31, 32, 33, 4095, 4096, 4097};

TEST(CodecDifferentialTest, EveryKernelRoundTripsWithSharesIdenticalToScalar) {
  const std::vector<const GaloisKernels*> simd = SimdKernels();
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD galois kernel on this host";
  }
  const std::pair<uint32_t, uint32_t> params[] = {
      {1, 1}, {1, 4}, {2, 3}, {2, 6}, {3, 5}, {4, 7}, {5, 8}};
  Rng rng(0x51DD1FF0);
  for (const auto& [t, n] : params) {
    SCOPED_TRACE(StrCat("t=", t, " n=", n));
    auto codec = SecretSharingCodec::Create(StrCat("diff key ", t, n), t, n);
    ASSERT_TRUE(codec.ok()) << codec.status();
    for (const size_t size : kAdversarialSizes) {
      SCOPED_TRACE(StrCat("size ", size));
      const Bytes payload = RandomContent(rng, size);

      std::vector<Share> oracle;
      {
        ScopedKernel forced(&ScalarGaloisKernels());
        auto shares = codec->Encode(payload);
        ASSERT_TRUE(shares.ok()) << shares.status();
        oracle = *std::move(shares);
      }
      for (const GaloisKernels* kernels : simd) {
        SCOPED_TRACE(kernels->name);
        ScopedKernel forced(kernels);
        auto shares = codec->Encode(payload);
        ASSERT_TRUE(shares.ok()) << shares.status();
        ASSERT_EQ(shares->size(), oracle.size());
        for (size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ((*shares)[i].data, oracle[i].data) << "share " << i;
        }
        // And the round trip closes under the SIMD kernel itself.
        std::vector<Share> subset(shares->begin(), shares->begin() + t);
        auto decoded = codec->Decode(subset, payload.size());
        ASSERT_TRUE(decoded.ok()) << decoded.status();
        EXPECT_EQ(*decoded, payload);
      }
    }
  }
}

TEST(CodecDifferentialTest, RowKernelsMatchScalarAtEveryMisalignment) {
  const std::vector<const GaloisKernels*> simd = SimdKernels();
  if (simd.empty()) {
    GTEST_SKIP() << "no SIMD galois kernel on this host";
  }
  Rng rng(0xA11C4ED);
  // A 257-byte row crosses several vectors plus a ragged tail; sweeping
  // both offsets over a full 32-byte (AVX2 vector) period covers every
  // relative alignment of src and dst the loadu/storeu paths can see.
  constexpr size_t kRow = 257;
  const Bytes src_base = RandomContent(rng, kRow + 64);
  const uint8_t coeffs[] = {0, 1, 2, 0x8e, 0xff};
  for (const GaloisKernels* kernels : simd) {
    SCOPED_TRACE(kernels->name);
    for (size_t src_off = 0; src_off < 32; ++src_off) {
      for (size_t dst_off = 0; dst_off < 32; ++dst_off) {
        for (const uint8_t c : coeffs) {
          Bytes dst_init = RandomContent(rng, kRow + 64);
          Bytes expect = dst_init;
          Bytes actual = dst_init;
          ScalarGaloisKernels().mul_add_row(c, src_base.data() + src_off,
                                            expect.data() + dst_off, kRow);
          kernels->mul_add_row(c, src_base.data() + src_off,
                               actual.data() + dst_off, kRow);
          ASSERT_EQ(actual, expect)
              << "mul_add_row c=" << int{c} << " src+" << src_off << " dst+"
              << dst_off;
          expect = dst_init;
          actual = dst_init;
          ScalarGaloisKernels().mul_row(c, src_base.data() + src_off,
                                        expect.data() + dst_off, kRow);
          kernels->mul_row(c, src_base.data() + src_off,
                           actual.data() + dst_off, kRow);
          ASSERT_EQ(actual, expect)
              << "mul_row c=" << int{c} << " src+" << src_off << " dst+"
              << dst_off;
        }
      }
    }
    // Adversarial lengths at a handful of representative offsets.
    for (const size_t len : kAdversarialSizes) {
      const Bytes src = RandomContent(rng, len + 32);
      for (const size_t off : {size_t{0}, size_t{1}, size_t{15}, size_t{31}}) {
        Bytes expect = RandomContent(rng, len);
        Bytes actual = expect;
        ScalarGaloisKernels().mul_add_row(0x53, src.data() + off, expect.data(),
                                          len);
        kernels->mul_add_row(0x53, src.data() + off, actual.data(), len);
        ASSERT_EQ(actual, expect) << "len=" << len << " src+" << off;
      }
    }
  }
}

// Seeded randomized stress loop (ctest label `stress`): the fused
// EncodeBlock of every kernel - including scalar's own - against a
// row-by-row reference built from scalar MulAddRow.
TEST(CodecStress, EncodeBlockMatchesRowByRowScalarMulAddRow) {
  std::vector<const GaloisKernels*> kernels = SimdKernels();
  kernels.push_back(&ScalarGaloisKernels());
  Rng rng(0x57E55ED);
  for (int iter = 0; iter < 150; ++iter) {
    SCOPED_TRACE(StrCat("iter ", iter));
    const size_t rows = 1 + rng.NextBelow(8);
    const size_t len = rng.NextBelow(20000);  // spans several 4 KB strips
    const size_t src_off = rng.NextBelow(32);
    std::vector<uint8_t> coeffs(rows);
    for (auto& c : coeffs) {
      c = static_cast<uint8_t>(rng.Next());
    }
    const Bytes src = RandomContent(rng, len + src_off);

    // Reference: plain scalar MulAddRow per row, no fused path involved.
    std::vector<Bytes> expect(rows);
    for (size_t r = 0; r < rows; ++r) {
      expect[r] = RandomContent(rng, len + 32);
    }
    std::vector<Bytes> actual_init = expect;
    for (size_t r = 0; r < rows; ++r) {
      ScalarGaloisKernels().mul_add_row(coeffs[r], src.data() + src_off,
                                        expect[r].data() + (r % 32), len);
    }
    for (const GaloisKernels* k : kernels) {
      SCOPED_TRACE(k->name);
      std::vector<Bytes> actual = actual_init;
      std::vector<uint8_t*> dsts(rows);
      for (size_t r = 0; r < rows; ++r) {
        dsts[r] = actual[r].data() + (r % 32);  // per-row misalignment
      }
      k->encode_block(coeffs.data(), rows, src.data() + src_off, len,
                      dsts.data());
      for (size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(actual[r], expect[r]) << "row " << r;
      }
    }
  }
}

// --- Client-level round trips across adversarial sizes and parameters ---

struct PropertyCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

PropertyCloud MakePropertyCloud(uint64_t seed, uint32_t t, uint32_t meta_t) {
  PropertyCloud cloud;
  CyrusConfig config;
  config.client_id = "property-device";
  config.key_string = StrCat("property key ", seed);
  config.t = t;
  config.meta_t = meta_t;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 4;
  config.pipeline_window_chunks = 1 + static_cast<uint32_t>(seed % 5);
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (int i = 0; i < 6; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("prop-csp", i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    cloud.csps.push_back(std::make_shared<SimulatedCsp>(o));
    CspProfile profile;
    profile.rtt_ms = 80 + 15.0 * i;
    profile.download_bytes_per_sec = 8e6;
    profile.upload_bytes_per_sec = 4e6;
    auto added = cloud.client->AddCsp(cloud.csps.back(), profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

TEST(CodecPropertyTest, PutGetRoundTripsAcrossAdversarialSizes) {
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE(StrCat("trial ", trial));
    const uint64_t seed = 0xD00D0000u + static_cast<uint64_t>(trial);
    Rng rng(seed);
    const uint32_t t = 1 + static_cast<uint32_t>(rng.NextBelow(4));       // 1..4
    const uint32_t meta_t = 1 + static_cast<uint32_t>(rng.NextBelow(3));  // 1..3
    PropertyCloud cloud = MakePropertyCloud(seed, t, meta_t);

    // ForTesting chunker caps chunks at 8 KiB: straddle that boundary by
    // one byte each way, plus empty, single-byte, and a multi-MB file that
    // needs hundreds of pipelined chunks.
    const size_t max_chunk = cloud.client->config().chunker.max_chunk_size;
    std::vector<size_t> sizes = {0, 1, max_chunk - 1, max_chunk, max_chunk + 1};
    if (trial < 2) {
      // Multi-MB (hundreds of pipelined chunks) on two trials; the rest
      // stay small so the property sweep remains tier-1 fast.
      sizes.push_back(2 * 1024 * 1024 + rng.NextBelow(1024));
    } else {
      sizes.push_back(64 * 1024 + rng.NextBelow(64 * 1024));
    }
    for (size_t k = 0; k < sizes.size(); ++k) {
      SCOPED_TRACE(StrCat("size ", sizes[k]));
      const Bytes content = RandomContent(rng, sizes[k]);
      const std::string name = StrCat("prop-", trial, "-", k);
      auto put = cloud.client->Put(name, content);
      ASSERT_TRUE(put.ok()) << put.status();
      auto get = cloud.client->Get(name);
      ASSERT_TRUE(get.ok()) << get.status();
      ASSERT_EQ(get->content.size(), content.size());
      EXPECT_EQ(get->content, content);
    }
  }
}

}  // namespace
}  // namespace cyrus
