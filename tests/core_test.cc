#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/hash_ring.h"
#include "src/core/reliability.h"
#include "src/core/transfer.h"

namespace cyrus {
namespace {

Sha1Digest Id(std::string_view tag) { return Sha1::Hash(tag); }

// --- Reliability (Equation 1) ---

TEST(ReliabilityTest, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 7), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 10), 184756.0);
}

TEST(ReliabilityTest, PerfectCspsNeverLose) {
  EXPECT_DOUBLE_EQ(ChunkLossProbability(2, 3, 0.0), 0.0);
}

TEST(ReliabilityTest, AlwaysDownCspsAlwaysLose) {
  EXPECT_DOUBLE_EQ(ChunkLossProbability(2, 3, 1.0), 1.0);
}

TEST(ReliabilityTest, NoRedundancyEqualsAnyFailure) {
  // t = n = 1: loss iff the single CSP fails.
  EXPECT_NEAR(ChunkLossProbability(1, 1, 0.01), 0.01, 1e-12);
}

TEST(ReliabilityTest, KnownTwoOfThreeValue) {
  // t=2, n=3, p=0.1: loss = P(0 or 1 survivors)
  //   = 0.1^3 + 3 * 0.9 * 0.01 = 0.001 + 0.027 = 0.028.
  EXPECT_NEAR(ChunkLossProbability(2, 3, 0.1), 0.028, 1e-12);
}

TEST(ReliabilityTest, MoreSharesMoreReliable) {
  for (uint32_t n = 2; n < 8; ++n) {
    EXPECT_GT(ChunkLossProbability(2, n, 0.05), ChunkLossProbability(2, n + 1, 0.05));
  }
}

TEST(ReliabilityTest, HigherTNeedsMoreShares) {
  const double p = 0.05, eps = 1e-6;
  auto n2 = MinSharesForReliability(2, p, eps, 20);
  auto n3 = MinSharesForReliability(3, p, eps, 20);
  ASSERT_TRUE(n2.ok());
  ASSERT_TRUE(n3.ok());
  EXPECT_GT(*n3, *n2);
}

TEST(ReliabilityTest, MinimalNIsTight) {
  // The solver's n satisfies the budget but n-1 does not.
  auto n = MinSharesForReliability(2, 0.1, 1e-4, 20);
  ASSERT_TRUE(n.ok());
  EXPECT_LE(ChunkLossProbability(2, *n, 0.1), 1e-4);
  if (*n > 2) {
    EXPECT_GT(ChunkLossProbability(2, *n - 1, 0.1), 1e-4);
  }
}

TEST(ReliabilityTest, TooFewCspsFails) {
  EXPECT_EQ(MinSharesForReliability(3, 0.1, 1e-9, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReliabilityTest, UnreachableBudgetFails) {
  EXPECT_EQ(MinSharesForReliability(2, 0.5, 1e-12, 4).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReliabilityTest, PaperConfigurationsAreOrdered) {
  // Figure 13's observation: (2,4) is far more reliable than (3,4).
  const double p = 10.0 / 8760.0;  // ~10 h/yr downtime
  EXPECT_LT(ChunkLossProbability(2, 4, p), ChunkLossProbability(3, 4, p));
}

// --- HashRing ---

TEST(HashRingTest, AddRemoveContains) {
  HashRing ring;
  ASSERT_TRUE(ring.AddCsp(0, "dropbox", -1).ok());
  EXPECT_TRUE(ring.Contains(0));
  EXPECT_EQ(ring.AddCsp(0, "dup", -1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ring.AddCsp(1, "dropbox", -1).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(ring.RemoveCsp(0).ok());
  EXPECT_FALSE(ring.Contains(0));
  EXPECT_EQ(ring.RemoveCsp(0).code(), StatusCode::kNotFound);
}

TEST(HashRingTest, SelectsNDistinctCsps) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  auto selected = ring.SelectCsps(Id("chunk"), 3);
  ASSERT_TRUE(selected.ok());
  std::set<int> uniq(selected->begin(), selected->end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(HashRingTest, SelectionIsDeterministic) {
  HashRing a, b;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.AddCsp(i, "csp" + std::to_string(i), -1).ok());
    ASSERT_TRUE(b.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  EXPECT_EQ(*a.SelectCsps(Id("chunk-x"), 2), *b.SelectCsps(Id("chunk-x"), 2));
}

TEST(HashRingTest, TooFewCspsFails) {
  HashRing ring;
  ASSERT_TRUE(ring.AddCsp(0, "only", -1).ok());
  EXPECT_EQ(ring.SelectCsps(Id("c"), 2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HashRingTest, EmptyRingFails) {
  HashRing ring;
  EXPECT_FALSE(ring.SelectCsps(Id("c"), 1).ok());
}

TEST(HashRingTest, BalancesLoadAcrossCsps) {
  // Consistent hashing's point: placements spread evenly (paper §5.3).
  HashRing ring(128);
  const int kCsps = 5;
  for (int i = 0; i < kCsps; ++i) {
    ASSERT_TRUE(ring.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  std::map<int, int> first_choice_counts;
  const int kChunks = 5000;
  for (int c = 0; c < kChunks; ++c) {
    auto selected = ring.SelectCsps(Id("chunk-" + std::to_string(c)), 1);
    ASSERT_TRUE(selected.ok());
    first_choice_counts[selected->front()]++;
  }
  for (int i = 0; i < kCsps; ++i) {
    EXPECT_GT(first_choice_counts[i], kChunks / kCsps / 2) << "csp " << i;
    EXPECT_LT(first_choice_counts[i], kChunks * 2 / kCsps) << "csp " << i;
  }
}

TEST(HashRingTest, RemovalOnlyRemapsRemovedCspsChunks) {
  // The §5.5 minimal-reshuffle property: removing a CSP must not move
  // placements that did not involve it.
  HashRing ring;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  std::map<int, int> before;
  for (int c = 0; c < 500; ++c) {
    before[c] = ring.SelectCsps(Id("k" + std::to_string(c)), 1)->front();
  }
  ASSERT_TRUE(ring.RemoveCsp(2).ok());
  for (int c = 0; c < 500; ++c) {
    const int now = ring.SelectCsps(Id("k" + std::to_string(c)), 1)->front();
    if (before[c] != 2) {
      EXPECT_EQ(now, before[c]) << "chunk " << c << " moved unnecessarily";
    } else {
      EXPECT_NE(now, 2);
    }
  }
}

TEST(HashRingTest, AdditionOnlyStealsFromExistingCsps) {
  // Adding an account must not shuffle placements among the old CSPs: a
  // chunk's first choice either stays put or moves to the *new* CSP
  // (consistent hashing's minimal-disruption property, paper §5.5).
  HashRing ring;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  std::map<int, int> before;
  for (int c = 0; c < 500; ++c) {
    before[c] = ring.SelectCsps(Id("k" + std::to_string(c)), 1)->front();
  }
  ASSERT_TRUE(ring.AddCsp(4, "newcomer", -1).ok());
  int moved = 0;
  for (int c = 0; c < 500; ++c) {
    const int now = ring.SelectCsps(Id("k" + std::to_string(c)), 1)->front();
    if (now != before[c]) {
      EXPECT_EQ(now, 4) << "chunk " << c << " moved between old CSPs";
      ++moved;
    }
  }
  // The newcomer takes roughly 1/5 of first choices.
  EXPECT_GT(moved, 500 / 5 / 2);
  EXPECT_LT(moved, 500 * 2 / 5);
}

TEST(HashRingTest, ClusterAwareAvoidsSamePlatform) {
  HashRing ring;
  // Two CSPs on cluster 0, two on cluster 1, one on cluster 2.
  ASSERT_TRUE(ring.AddCsp(0, "a", 0).ok());
  ASSERT_TRUE(ring.AddCsp(1, "b", 0).ok());
  ASSERT_TRUE(ring.AddCsp(2, "c", 1).ok());
  ASSERT_TRUE(ring.AddCsp(3, "d", 1).ok());
  ASSERT_TRUE(ring.AddCsp(4, "e", 2).ok());
  const std::map<int, int> cluster_of = {{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}};
  for (int c = 0; c < 100; ++c) {
    auto selected = ring.SelectCspsClusterAware(Id("c" + std::to_string(c)), 3);
    ASSERT_TRUE(selected.ok());
    std::set<int> clusters;
    for (int csp : *selected) {
      clusters.insert(cluster_of.at(csp));
    }
    EXPECT_EQ(clusters.size(), 3u) << "chunk " << c << " reused a platform";
  }
}

TEST(HashRingTest, ClusterAwareFailsWhenNotEnoughClusters) {
  HashRing ring;
  ASSERT_TRUE(ring.AddCsp(0, "a", 0).ok());
  ASSERT_TRUE(ring.AddCsp(1, "b", 0).ok());
  EXPECT_FALSE(ring.SelectCspsClusterAware(Id("c"), 2).ok());
}

TEST(HashRingTest, ExclusionRespected) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.AddCsp(i, "csp" + std::to_string(i), -1).ok());
  }
  auto selected = ring.SelectCspsExcluding(Id("c"), 2, {0, 1});
  ASSERT_TRUE(selected.ok());
  for (int csp : *selected) {
    EXPECT_GE(csp, 2);
  }
}

// --- TransferReport / TransferAggregator ---

TEST(TransferReportTest, Accounting) {
  TransferReport report;
  report.records.push_back({TransferKind::kPut, 0, "a", 100, true});
  report.records.push_back({TransferKind::kPut, 1, "b", 200, true});
  report.records.push_back({TransferKind::kPut, 0, "c", 50, false});  // failed
  report.records.push_back({TransferKind::kGet, 0, "d", 70, true});
  EXPECT_EQ(report.TotalBytes(TransferKind::kPut), 300u);
  EXPECT_EQ(report.TotalBytes(TransferKind::kGet), 70u);
  EXPECT_EQ(report.BytesToCsp(0), 170u);
  EXPECT_EQ(report.CountOf(TransferKind::kPut), 3u);

  TransferReport other;
  other.records.push_back({TransferKind::kPutMeta, 2, "m", 10, true});
  report.Append(other);
  EXPECT_EQ(report.records.size(), 5u);
}

TEST(TransferKindTest, Names) {
  EXPECT_EQ(TransferKindName(TransferKind::kPut), "PUT");
  EXPECT_EQ(TransferKindName(TransferKind::kGetMeta), "GET_META");
}

TEST(TransferAggregatorTest, ChunkThenFileCompletion) {
  TransferAggregator agg;
  int chunk_events = 0, file_events = 0;
  agg.set_on_chunk_complete([&](const Sha1Digest&) { ++chunk_events; });
  agg.set_on_file_complete([&](const std::string&) { ++file_events; });

  agg.ExpectChunk("f", Id("c1"), 2);
  agg.ExpectChunk("f", Id("c2"), 2);

  agg.OnShareEvent("f", Id("c1"), true);
  EXPECT_FALSE(agg.ChunkComplete(Id("c1")));
  agg.OnShareEvent("f", Id("c1"), true);
  EXPECT_TRUE(agg.ChunkComplete(Id("c1")));
  EXPECT_EQ(chunk_events, 1);
  EXPECT_FALSE(agg.FileComplete("f"));

  agg.OnShareEvent("f", Id("c2"), true);
  agg.OnShareEvent("f", Id("c2"), true);
  EXPECT_TRUE(agg.FileComplete("f"));
  EXPECT_EQ(file_events, 1);
  EXPECT_EQ(chunk_events, 2);
}

TEST(TransferAggregatorTest, FailedEventsDoNotCount) {
  TransferAggregator agg;
  agg.ExpectChunk("f", Id("c"), 1);
  agg.OnShareEvent("f", Id("c"), false);
  EXPECT_FALSE(agg.ChunkComplete(Id("c")));
  agg.OnShareEvent("f", Id("c"), true);
  EXPECT_TRUE(agg.ChunkComplete(Id("c")));
}

TEST(TransferAggregatorTest, SurplusEventsIgnored) {
  TransferAggregator agg;
  int file_events = 0;
  agg.set_on_file_complete([&](const std::string&) { ++file_events; });
  agg.ExpectChunk("f", Id("c"), 1);
  agg.OnShareEvent("f", Id("c"), true);
  agg.OnShareEvent("f", Id("c"), true);  // duplicate completion
  EXPECT_EQ(file_events, 1);
}

TEST(TransferAggregatorTest, DuplicateExpectIsNoop) {
  TransferAggregator agg;
  agg.ExpectChunk("f", Id("c"), 2);
  agg.ExpectChunk("f", Id("c"), 5);  // ignored: first expectation wins
  agg.OnShareEvent("f", Id("c"), true);
  agg.OnShareEvent("f", Id("c"), true);
  EXPECT_TRUE(agg.ChunkComplete(Id("c")));
  EXPECT_TRUE(agg.FileComplete("f"));
}

}  // namespace
}  // namespace cyrus
