#include <gtest/gtest.h>

#include <set>

#include "src/crypto/naming.h"
#include "src/crypto/sha1.h"
#include "src/util/bytes.h"

namespace cyrus {
namespace {

// --- SHA-1 known-answer tests (FIPS 180-4 / RFC 3174 vectors) ---

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1::Hash(std::string_view("")).ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1::Hash(std::string_view("abc")).ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(Sha1::Hash(std::string_view(
                           "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
                .ToHex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(block);
  }
  EXPECT_EQ(h.Finish().ToHex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(Sha1::Hash(std::string_view("The quick brown fox jumps over the lazy dog"))
                .ToHex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string text = "CYRUS scatters files into smaller pieces across CSPs";
  for (size_t split = 0; split <= text.size(); ++split) {
    Sha1 h;
    h.Update(std::string_view(text).substr(0, split));
    h.Update(std::string_view(text).substr(split));
    EXPECT_EQ(h.Finish(), Sha1::Hash(std::string_view(text))) << "split=" << split;
  }
}

// Exercises every padding boundary around the 64-byte block size.
TEST(Sha1Test, AllLengthsNearBlockBoundaryAreConsistent) {
  for (size_t len = 50; len <= 70; ++len) {
    const std::string msg(len, 'x');
    Sha1 a;
    a.Update(msg);
    // Byte-at-a-time must agree with one-shot.
    Sha1 b;
    for (char ch : msg) {
      b.Update(std::string_view(&ch, 1));
    }
    EXPECT_EQ(a.Finish(), b.Finish()) << "len=" << len;
  }
}

TEST(Sha1Test, Prefix64IsBigEndianPrefix) {
  Sha1Digest d;
  for (int i = 0; i < 20; ++i) {
    d.bytes[i] = static_cast<uint8_t>(i + 1);
  }
  EXPECT_EQ(d.Prefix64(), 0x0102030405060708ULL);
}

TEST(Sha1Test, DigestOrderingIsLexicographic) {
  Sha1Digest a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_LT(a, b);
}

// --- Share naming ---

TEST(NamingTest, ShareNamesAreDeterministic) {
  const Sha1Digest chunk = Sha1::Hash(std::string_view("chunk content"));
  EXPECT_EQ(ShareName(chunk, 0, 2), ShareName(chunk, 0, 2));
}

TEST(NamingTest, ShareNamesDifferByIndex) {
  const Sha1Digest chunk = Sha1::Hash(std::string_view("chunk content"));
  std::set<std::string> names;
  for (uint32_t idx = 0; idx < 16; ++idx) {
    names.insert(ShareName(chunk, idx, 2));
  }
  EXPECT_EQ(names.size(), 16u);
}

TEST(NamingTest, ShareNamesDifferByT) {
  const Sha1Digest chunk = Sha1::Hash(std::string_view("chunk content"));
  EXPECT_NE(ShareName(chunk, 0, 2), ShareName(chunk, 0, 3));
}

TEST(NamingTest, ShareNamesDifferByContent) {
  EXPECT_NE(ShareName(Sha1::Hash(std::string_view("a")), 0, 2),
            ShareName(Sha1::Hash(std::string_view("b")), 0, 2));
}

TEST(NamingTest, ShareNameDoesNotLeakIndexTrivially) {
  // The name must not simply embed the index: names for consecutive indices
  // share no long common prefix.
  const Sha1Digest chunk = Sha1::Hash(std::string_view("secret"));
  const std::string n0 = ShareName(chunk, 0, 2);
  const std::string n1 = ShareName(chunk, 1, 2);
  size_t common = 0;
  while (common < n0.size() && n0[common] == n1[common]) {
    ++common;
  }
  EXPECT_LT(common, 8u);
}

TEST(NamingTest, MetadataNameHasPrefix) {
  const std::string name = MetadataName(Sha1::Hash(std::string_view("v1")));
  EXPECT_EQ(name.substr(0, 5), "meta-");
}

// --- Key derivation ---

TEST(NamingTest, DispersalVectorDeterministicAndDistinct) {
  const auto v1 = DeriveDispersalVector("my key", 8);
  const auto v2 = DeriveDispersalVector("my key", 8);
  EXPECT_EQ(v1, v2);
  std::set<uint8_t> uniq(v1.begin(), v1.end());
  EXPECT_EQ(uniq.size(), 8u);
  EXPECT_EQ(uniq.count(0), 0u);
}

TEST(NamingTest, DispersalVectorKeyDependence) {
  EXPECT_NE(DeriveDispersalVector("key a", 4), DeriveDispersalVector("key b", 4));
}

TEST(NamingTest, EvaluationPointsMaxCount) {
  const auto points = DeriveEvaluationPoints("key", 255);
  std::set<uint8_t> uniq(points.begin(), points.end());
  EXPECT_EQ(uniq.size(), 255u);
  EXPECT_EQ(uniq.count(0), 0u);
}

TEST(NamingTest, EvaluationPointsDisjointDomainsFromDispersal) {
  // Same key, different domains: the streams must not coincide.
  EXPECT_NE(DeriveEvaluationPoints("key", 8), DeriveDispersalVector("key", 8));
}

}  // namespace
}  // namespace cyrus
