// Cross-user convergent dedup: key derivation, the ShareIndex (refcounts,
// WAL recovery, concurrency), and the end-to-end write/read/GC paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/put_journal.h"
#include "src/crypto/convergent.h"
#include "src/crypto/naming.h"
#include "src/dedup/share_index.h"
#include "src/gateway/gateway.h"
#include "src/rs/secret_sharing.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 4;
constexpr char kSalt[] = "deployment-salt-for-tests";

Sha1Digest Id(std::string_view tag) { return Sha1::Hash(tag); }

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

ShareIndexEntry MakeEntry(uint64_t logical_size, uint64_t refcount) {
  ShareIndexEntry entry;
  entry.logical_size = logical_size;
  entry.t = 2;
  entry.n = 3;
  entry.refcount = refcount;
  entry.shares = {{0, 0}, {1, 1}, {2, 2}};
  return entry;
}

// --- ConvergentKeyDeriver ---

TEST(ConvergentTest, ContentKeyIsDeterministicPerChunk) {
  ConvergentKeyDeriver a(kSalt, "user-key-a");
  ConvergentKeyDeriver b(kSalt, "user-key-b");
  const Sha1Digest chunk = Id("chunk-1");
  // Same salt -> same content key regardless of user: that is what makes
  // two users' shares byte-identical.
  EXPECT_EQ(a.ContentKey(chunk), b.ContentKey(chunk));
  EXPECT_NE(a.ContentKey(chunk), a.ContentKey(Id("chunk-2")));
  // A different deployment salt derives unrelated keys (no cross-
  // deployment dictionary attacks).
  ConvergentKeyDeriver other("other-salt", "user-key-a");
  EXPECT_NE(a.ContentKey(chunk), other.ContentKey(chunk));
}

TEST(ConvergentTest, WrapUnwrapRoundTripsWithOnlyUserKey) {
  ConvergentKeyDeriver writer(kSalt, "user-key");
  const Sha1Digest chunk = Id("chunk-x");
  const std::string content_key = writer.ContentKey(chunk);
  const Bytes wrapped = writer.WrapForUser(content_key, chunk);
  // A second device of the same user has the user key but NOT the salt.
  ConvergentKeyDeriver reader("", "user-key");
  auto unwrapped = reader.UnwrapForUser(wrapped, chunk);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
  EXPECT_EQ(*unwrapped, content_key);
  // A different user cannot recover the content key from the wrap.
  ConvergentKeyDeriver stranger("", "other-user-key");
  auto stolen = stranger.UnwrapForUser(wrapped, chunk);
  ASSERT_TRUE(stolen.ok());
  EXPECT_NE(*stolen, content_key);
  // Empty wraps are a metadata bug, not a silent empty key.
  EXPECT_FALSE(reader.UnwrapForUser(Bytes{}, chunk).ok());
}

// --- ShareIndex (in-memory semantics) ---

TEST(ShareIndexTest, PublishLookupRefReleaseErase) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok()) << index_or.status();
  ShareIndex& index = **index_or;

  const Sha1Digest chunk = Id("c1");
  EXPECT_FALSE(index.Lookup(chunk).has_value());
  EXPECT_FALSE(index.LookupAndRef(chunk).has_value());  // miss counted

  ASSERT_TRUE(index.Publish(chunk, MakeEntry(4096, 1)).ok());
  auto hit = index.LookupAndRef(chunk);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->refcount, 2u);
  EXPECT_EQ(hit->shares.size(), 3u);

  // Erase refuses while referenced; releases make it eligible.
  EXPECT_EQ(index.Erase(chunk).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(index.Release(chunk).ok());
  ASSERT_TRUE(index.Release(chunk).ok());
  ASSERT_EQ(index.ZeroRefChunks().size(), 1u);
  // Over-release clamps at zero (reported, never negative): the entry and
  // its shares survive so no other user's data can be freed by a double
  // release.
  EXPECT_EQ(index.Release(chunk).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(index.Lookup(chunk)->refcount, 0u);
  ASSERT_TRUE(index.Erase(chunk).ok());
  EXPECT_FALSE(index.Lookup(chunk).has_value());
  EXPECT_EQ(index.Erase(chunk).code(), StatusCode::kNotFound);

  const ShareIndexStats stats = index.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ShareIndexTest, PublishMergesRacingDuplicates) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  const Sha1Digest chunk = Id("c-race");
  ASSERT_TRUE(index.Publish(chunk, MakeEntry(1000, 1)).ok());
  // The racing loser published the same convergent bytes to a superset of
  // CSPs: refcounts add, layouts union.
  ShareIndexEntry rival = MakeEntry(1000, 1);
  rival.shares.push_back(ChunkShare{3, 3});
  ASSERT_TRUE(index.Publish(chunk, rival).ok());
  auto merged = index.Lookup(chunk);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->refcount, 2u);
  EXPECT_EQ(merged->shares.size(), 4u);
  // A (size, t) mismatch is corruption, not a race.
  ShareIndexEntry corrupt = MakeEntry(999, 1);
  EXPECT_EQ(index.Publish(chunk, corrupt).code(), StatusCode::kDataLoss);
}

TEST(ShareIndexTest, StatsTrackLogicalUniquePhysical) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  ASSERT_TRUE(index.Publish(Id("a"), MakeEntry(1000, 3)).ok());
  ASSERT_TRUE(index.Publish(Id("b"), MakeEntry(500, 1)).ok());
  const ShareIndexStats stats = index.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.logical_bytes, 3 * 1000u + 500u);
  EXPECT_EQ(stats.unique_bytes, 1500u);
  // 3 shares of ceil(size/t) bytes each, t = 2.
  EXPECT_EQ(stats.physical_bytes, 3 * ShareSize(1000, 2) + 3 * ShareSize(500, 2));
  EXPECT_NEAR(stats.dedup_ratio(), 3500.0 / 1500.0, 1e-9);
}

TEST(ShareIndexTest, SerializeRoundTripRemapsCspDirectory) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  ASSERT_TRUE(index.Publish(Id("a"), MakeEntry(1000, 2)).ok());
  const std::vector<std::string> writer_dir = {"csp-x", "csp-y", "csp-z"};
  const Bytes snapshot = index.Serialize(writer_dir);

  // The loading process registered the same providers in another order.
  auto other_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(other_or.ok());
  ShareIndex& other = **other_or;
  const std::vector<std::string> reader_dir = {"csp-z", "csp-x", "csp-y"};
  ASSERT_TRUE(other.Load(snapshot, reader_dir).ok());
  auto entry = other.Lookup(Id("a"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->refcount, 2u);
  ASSERT_EQ(entry->shares.size(), 3u);
  // Writer csp 0 = "csp-x" = reader csp 1, and so on.
  EXPECT_EQ(entry->shares[0].csp, 1);
  EXPECT_EQ(entry->shares[1].csp, 2);
  EXPECT_EQ(entry->shares[2].csp, 0);
  EXPECT_EQ(other.Stats().unique_bytes, 1000u);
}

TEST(ShareIndexTest, ConcurrentRefUnrefStaysExact) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  constexpr int kChunks = 8;
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 200;
  for (int c = 0; c < kChunks; ++c) {
    ASSERT_TRUE(
        index.Publish(Id(StrCat("cc", c)), MakeEntry(100 * (c + 1), 1)).ok());
  }
  // Every thread adds then releases one ref per chunk per round: the net
  // must be exactly the published refcount of 1, under real contention.
  ThreadPool pool(kThreads);
  ThreadPool::TaskGroup group;
  for (int w = 0; w < kThreads; ++w) {
    pool.Submit(group, [&index, w] {
      for (int r = 0; r < kRoundsPerThread; ++r) {
        for (int c = 0; c < kChunks; ++c) {
          const Sha1Digest chunk = Id(StrCat("cc", c));
          if ((w + r + c) % 2 == 0) {
            EXPECT_TRUE(index.AddRef(chunk).ok());
            EXPECT_TRUE(index.Release(chunk).ok());
          } else {
            auto hit = index.LookupAndRef(chunk);
            EXPECT_TRUE(hit.has_value());
            EXPECT_TRUE(index.Release(chunk).ok());
          }
        }
      }
    });
  }
  pool.WaitGroup(group);
  for (int c = 0; c < kChunks; ++c) {
    auto entry = index.Lookup(Id(StrCat("cc", c)));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->refcount, 1u) << "chunk " << c;
  }
  EXPECT_TRUE(index.ZeroRefChunks().empty());
}

TEST(ShareIndexTest, JournalRecoversAcrossReopen) {
  const std::string journal =
      StrCat(testing::TempDir(), "/cyrus-dedup-wal-", ::getpid(), ".log");
  std::remove(journal.c_str());
  ShareIndexOptions options;
  options.journal_path = journal;
  {
    auto index_or = ShareIndex::Open(options);
    ASSERT_TRUE(index_or.ok()) << index_or.status();
    ShareIndex& index = **index_or;
    ASSERT_TRUE(index.Publish(Id("keep"), MakeEntry(1000, 1)).ok());
    ASSERT_TRUE(index.Publish(Id("gone"), MakeEntry(2000, 1)).ok());
    ASSERT_TRUE(index.AddRef(Id("keep")).ok());
    ASSERT_TRUE(index.Release(Id("gone")).ok());
    ASSERT_TRUE(index.Erase(Id("gone")).ok());
    // No clean shutdown path: the destructor closes the FILE*, but every
    // record was already fsynced when appended.
  }
  // Simulate a torn final record from a crash mid-append.
  {
    std::FILE* f = std::fopen(journal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("P deadbeef", f);  // no newline, truncated payload
    std::fclose(f);
  }
  auto reopened_or = ShareIndex::Open(options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  ShareIndex& reopened = **reopened_or;
  EXPECT_EQ(reopened.size(), 1u);
  auto kept = reopened.Lookup(Id("keep"));
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->refcount, 2u);
  EXPECT_EQ(kept->logical_size, 1000u);
  EXPECT_EQ(kept->shares.size(), 3u);
  EXPECT_FALSE(reopened.Lookup(Id("gone")).has_value());
  std::remove(journal.c_str());
}

TEST(ShareIndexTest, PendingDeleteTombstoneInvisibleUntilRevived) {
  const std::string journal =
      StrCat(testing::TempDir(), "/cyrus-dedup-tomb-", ::getpid(), ".log");
  std::remove(journal.c_str());
  ShareIndexOptions options;
  options.journal_path = journal;
  {
    auto index_or = ShareIndex::Open(options);
    ASSERT_TRUE(index_or.ok()) << index_or.status();
    ShareIndex& index = **index_or;

    // What a partially failed GC pass leaves behind: zero references,
    // pending_delete set, only the undeleted locations recorded.
    ShareIndexEntry tombstone = MakeEntry(4096, 0);
    tombstone.pending_delete = true;
    tombstone.shares = {{2, 2}};
    ASSERT_TRUE(index.Publish(Id("tomb"), tombstone).ok());
    ASSERT_TRUE(index.Publish(Id("tomb2"), tombstone).ok());

    // Invisible to writers: nobody may adopt a partially deleted layout.
    EXPECT_FALSE(index.LookupAndRef(Id("tomb")).has_value());
    EXPECT_EQ(index.AddRef(Id("tomb")).code(), StatusCode::kNotFound);
    // ...but scrub still surfaces it for retry.
    EXPECT_EQ(index.ZeroRefChunks().size(), 2u);
    auto raw = index.Lookup(Id("tomb"));
    ASSERT_TRUE(raw.has_value());
    EXPECT_TRUE(raw->pending_delete);
    EXPECT_EQ(raw->refcount, 0u);

    // A writer that re-uploaded the full convergent layout revives the
    // entry: the merge clears pending_delete and the chunk is adoptable.
    ASSERT_TRUE(index.Publish(Id("tomb"), MakeEntry(4096, 1)).ok());
    auto revived = index.LookupAndRef(Id("tomb"));
    ASSERT_TRUE(revived.has_value());
    EXPECT_FALSE(revived->pending_delete);
    EXPECT_EQ(revived->refcount, 2u);
    EXPECT_EQ(revived->shares.size(), 3u);
  }
  // The flag is a durable property of the entry (WAL record v2): a restart
  // must not resurrect a tombstone as adoptable.
  auto reopened_or = ShareIndex::Open(options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  ShareIndex& reopened = **reopened_or;
  EXPECT_FALSE(reopened.LookupAndRef(Id("tomb2")).has_value());
  auto still_tomb = reopened.Lookup(Id("tomb2"));
  ASSERT_TRUE(still_tomb.has_value());
  EXPECT_TRUE(still_tomb->pending_delete);
  auto still_live = reopened.Lookup(Id("tomb"));
  ASSERT_TRUE(still_live.has_value());
  EXPECT_FALSE(still_live->pending_delete);
  EXPECT_EQ(still_live->refcount, 2u);
  std::remove(journal.c_str());
}

TEST(ShareIndexTest, JournaledSnapshotsAndDeltasReplayExactly) {
  const std::string journal =
      StrCat(testing::TempDir(), "/cyrus-dedup-race-", ::getpid(), ".log");
  std::remove(journal.c_str());
  ShareIndexOptions options;
  options.journal_path = journal;
  const Sha1Digest chunk = Id("contended");
  {
    auto index_or = ShareIndex::Open(options);
    ASSERT_TRUE(index_or.ok()) << index_or.status();
    ShareIndex& index = **index_or;
    ASSERT_TRUE(index.Publish(chunk, MakeEntry(4096, 1)).ok());

    // Refcount deltas race against full-entry snapshots (ReplaceShares
    // journals a P record). Snapshots are appended under the same shard
    // lock as the mutation, so replay sees them in memory order - a
    // snapshot can never swallow a delta that preceded it.
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&index, &chunk] {
        for (int i = 0; i < 100; ++i) {
          EXPECT_TRUE(index.AddRef(chunk).ok());
          EXPECT_TRUE(index.Release(chunk).ok());
        }
      });
    }
    threads.emplace_back([&index, &chunk] {
      for (int i = 0; i < 50; ++i) {
        std::vector<ChunkShare> shares =
            (i % 2 == 0) ? std::vector<ChunkShare>{{0, 0}, {1, 1}, {2, 2}}
                         : std::vector<ChunkShare>{{0, 1}, {1, 2}, {2, 3}};
        EXPECT_TRUE(index.ReplaceShares(chunk, std::move(shares)).ok());
      }
    });
    for (auto& thread : threads) {
      thread.join();
    }
    ASSERT_EQ(index.Lookup(chunk)->refcount, 1u);
  }
  auto reopened_or = ShareIndex::Open(options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  auto recovered = (*reopened_or)->Lookup(chunk);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->refcount, 1u);
  std::remove(journal.c_str());
}

// --- End-to-end through CyrusClient ---

struct TestCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

CyrusConfig ConvergentConfig(std::string client_id, ShareIndex* index) {
  CyrusConfig config;
  config.client_id = std::move(client_id);
  config.key_string = "deployment key material";
  config.t = 2;
  config.epsilon = 1e-4;
  config.default_failure_prob = 0.01;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.dedup_mode = DedupMode::kConvergent;
  config.dedup_salt = kSalt;
  config.share_index = index;
  return config;
}

// All CSPs name-keyed: convergent shares are idempotent overwrites.
std::vector<std::shared_ptr<SimulatedCsp>> MakeCsps() {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = "csp" + std::to_string(i);
    o.naming = NamingPolicy::kNameKeyed;
    csps.push_back(std::make_shared<SimulatedCsp>(o));
  }
  return csps;
}

TestCloud MakeCloud(CyrusConfig config,
                    std::vector<std::shared_ptr<SimulatedCsp>> csps = {}) {
  TestCloud cloud;
  cloud.csps = csps.empty() ? MakeCsps() : std::move(csps);
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (size_t i = 0; i < cloud.csps.size(); ++i) {
    CspProfile profile;
    profile.rtt_ms = 50;
    profile.download_bytes_per_sec = 10e6;
    profile.upload_bytes_per_sec = 5e6;
    auto added = cloud.client->AddCsp(cloud.csps[i], profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

// Share objects at a CSP (everything that is not a metadata object).
size_t ShareObjectCount(SimulatedCsp& csp) {
  auto listing = csp.List("");
  EXPECT_TRUE(listing.ok());
  size_t count = 0;
  for (const ObjectInfo& object : *listing) {
    if (object.name.rfind("meta-", 0) != 0) {
      ++count;
    }
  }
  return count;
}

size_t TotalShareObjects(const std::vector<std::shared_ptr<SimulatedCsp>>& csps) {
  size_t total = 0;
  for (const auto& csp : csps) {
    total += ShareObjectCount(*csp);
  }
  return total;
}

TEST(DedupE2ETest, CreateRequiresSaltInConvergentMode) {
  CyrusConfig config = ConvergentConfig("d1", nullptr);
  config.dedup_salt.clear();
  EXPECT_EQ(CyrusClient::Create(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DedupE2ETest, SecondUserSkipsUploadEntirely) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;

  auto csps = MakeCsps();
  TestCloud alice = MakeCloud(ConvergentConfig("alice", &index), csps);
  TestCloud bob = MakeCloud(ConvergentConfig("bob", &index), csps);

  const Bytes content = RandomContent(32 * 1024, 7);
  auto first = alice.client->Put("t/alice/report.bin", content);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->new_chunks, first->total_chunks);
  EXPECT_EQ(first->index_hit_chunks, 0u);
  const size_t objects_after_first = TotalShareObjects(csps);
  ASSERT_GT(objects_after_first, 0u);

  auto second = bob.client->Put("t/bob/copy-of-report.bin", content);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->new_chunks, 0u);
  EXPECT_EQ(second->index_hit_chunks, second->total_chunks);
  EXPECT_EQ(second->uploaded_share_bytes, 0u);
  // No new share object appeared anywhere: bob stored by reference.
  EXPECT_EQ(TotalShareObjects(csps), objects_after_first);

  // Both users read their own file back through the wrapped content key.
  auto got_alice = alice.client->Get("t/alice/report.bin");
  ASSERT_TRUE(got_alice.ok()) << got_alice.status();
  EXPECT_EQ(got_alice->content, content);
  auto got_bob = bob.client->Get("t/bob/copy-of-report.bin");
  ASSERT_TRUE(got_bob.ok()) << got_bob.status();
  EXPECT_EQ(got_bob->content, content);

  const ShareIndexStats stats = index.Stats();
  EXPECT_NEAR(stats.dedup_ratio(), 2.0, 0.01);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(DedupE2ETest, ConvergentRoundTripWithoutIndexStillWorks) {
  // dedup_mode on, no shared index: chunks are convergent-encoded and
  // readable, there is just no cross-user table to consult.
  TestCloud cloud = MakeCloud(ConvergentConfig("solo", nullptr));
  const Bytes content = RandomContent(20 * 1024, 11);
  auto put = cloud.client->Put("file.bin", content);
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_EQ(put->index_hit_chunks, 0u);
  auto get = cloud.client->Get("file.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(DedupE2ETest, DeleteThenScrubReclaimsPhysicalShares) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  TestCloud cloud = MakeCloud(ConvergentConfig("gc", &index));

  const Bytes keep = RandomContent(16 * 1024, 21);
  const Bytes drop = RandomContent(16 * 1024, 22);
  ASSERT_TRUE(cloud.client->Put("keep.bin", keep).ok());
  ASSERT_TRUE(cloud.client->Put("drop.bin", drop).ok());
  const size_t objects_before = TotalShareObjects(cloud.csps);
  const uint64_t unique_before = index.Stats().unique_bytes;

  ASSERT_TRUE(cloud.client->Delete("drop.bin").ok());
  ASSERT_GT(index.ZeroRefChunks().size(), 0u);

  auto scrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->stats.chunks_reclaimed, 0u);
  EXPECT_GT(scrub->stats.shares_reclaimed, 0u);

  // Physical objects for drop.bin are gone; keep.bin still reads back.
  EXPECT_LT(TotalShareObjects(cloud.csps), objects_before);
  EXPECT_LT(index.Stats().unique_bytes, unique_before);
  EXPECT_TRUE(index.ZeroRefChunks().empty());
  auto get = cloud.client->Get("keep.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, keep);
}

TEST(DedupE2ETest, OverwriteReleasesSupersededChunks) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  TestCloud cloud = MakeCloud(ConvergentConfig("ow", &index));

  const Bytes v1 = RandomContent(16 * 1024, 31);
  const Bytes v2 = RandomContent(16 * 1024, 32);
  ASSERT_TRUE(cloud.client->Put("doc.bin", v1).ok());
  ASSERT_TRUE(cloud.client->Put("doc.bin", v2).ok());
  // v1's chunks lost their only reference; scrub reclaims them while v2
  // stays live and readable.
  ASSERT_GT(index.ZeroRefChunks().size(), 0u);
  auto scrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->stats.chunks_reclaimed, 0u);
  auto get = cloud.client->Get("doc.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, v2);
}

TEST(DedupE2ETest, ReAdoptionAfterRemoteReclaimRescatters) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  TestCloud cloud = MakeCloud(ConvergentConfig("resc", &index));

  const Bytes content = RandomContent(24 * 1024, 53);
  ASSERT_TRUE(cloud.client->Put("orig.bin", content).ok());
  ASSERT_TRUE(cloud.client->Delete("orig.bin").ok());

  // Another shard's scrub reclaims the zero-ref chunks: index entries go,
  // then the share objects go. This client's chunk table still caches the
  // now-void layout.
  for (const Sha1Digest& chunk : index.ZeroRefChunks()) {
    ASSERT_TRUE(index.Erase(chunk).ok());
  }
  for (const auto& csp : cloud.csps) {
    auto listing = csp->List("");
    ASSERT_TRUE(listing.ok());
    for (const ObjectInfo& object : *listing) {
      if (object.name.rfind("meta-", 0) != 0) {
        ASSERT_TRUE(csp->Delete(object.name).ok());
      }
    }
  }
  ASSERT_EQ(TotalShareObjects(cloud.csps), 0u);

  // Re-putting the same content must re-encode and re-upload, not
  // republish the cached layout - those objects no longer exist anywhere.
  auto again = cloud.client->Put("again.bin", content);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_GT(again->uploaded_share_bytes, 0u);
  EXPECT_GT(TotalShareObjects(cloud.csps), 0u);
  EXPECT_GT(index.Stats().entries, 0u);
  auto get = cloud.client->Get("again.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(DedupE2ETest, FailedReclaimLeavesTombstoneAndRetriesNextPass) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;

  auto csps = MakeCsps();
  auto client_or = CyrusClient::Create(ConvergentConfig("tomb", &index));
  ASSERT_TRUE(client_or.ok()) << client_or.status();
  std::unique_ptr<CyrusClient> client = std::move(client_or).value();
  std::vector<std::shared_ptr<FaultInjectingConnector>> faulty;
  for (const auto& csp : csps) {
    auto wrapper =
        std::make_shared<FaultInjectingConnector>(csp, FaultInjectionOptions{});
    CspProfile profile;
    profile.rtt_ms = 50;
    profile.download_bytes_per_sec = 10e6;
    profile.upload_bytes_per_sec = 5e6;
    ASSERT_TRUE(client->AddCsp(wrapper, profile, Credentials{"token"}).ok());
    faulty.push_back(std::move(wrapper));
  }

  const Bytes drop = RandomContent(16 * 1024, 61);
  ASSERT_TRUE(client->Put("drop.bin", drop).ok());
  ASSERT_TRUE(client->Delete("drop.bin").ok());

  // One provider goes dark before scrub can delete its share objects.
  int down = -1;
  for (int i = 0; i < kNumCsps; ++i) {
    if (ShareObjectCount(*csps[i]) > 0) {
      down = i;
      break;
    }
  }
  ASSERT_GE(down, 0);
  faulty[down]->set_permanently_down(true);

  auto first = client->ScrubOnce();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_GE(first->stats.reclaims_deferred, 1u);
  // The failed deletes left pending-delete tombstones, not silently erased
  // index entries: the surviving objects keep a record that drives a
  // retry, while writers cannot adopt the partially deleted layout.
  std::vector<Sha1Digest> pending = index.ZeroRefChunks();
  ASSERT_FALSE(pending.empty());
  for (const Sha1Digest& chunk : pending) {
    auto entry = index.Lookup(chunk);
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(entry->pending_delete) << chunk.ToHex();
    EXPECT_FALSE(index.LookupAndRef(chunk).has_value());
  }

  // The provider comes back; the next pass finishes the deletes.
  faulty[down]->set_permanently_down(false);
  ASSERT_TRUE(client->MarkCspRecovered(down).ok());
  auto second = client->ScrubOnce();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GE(second->stats.chunks_reclaimed, 1u);
  EXPECT_TRUE(index.ZeroRefChunks().empty());
  EXPECT_EQ(TotalShareObjects(csps), 0u);
}

TEST(DedupE2ETest, JournalRollbackSparesObjectsOtherTenantsReference) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;
  auto csps = MakeCsps();

  // A tenant on another metadata shard owns this chunk: its convergent
  // share objects and index entry exist, but no file metadata this client
  // could sync references them.
  const Sha1Digest shared_chunk = Id("foreign-tenant-chunk");
  const uint32_t t = 2;
  std::vector<std::string> shared_objects;
  for (const auto& csp : csps) {
    ASSERT_TRUE(csp->Authenticate(Credentials{"token"}).ok());
  }
  for (uint32_t i = 0; i < 3; ++i) {
    const std::string name = ShareName(shared_chunk, i, t);
    ASSERT_TRUE(csps[i]->Upload(name, RandomContent(512, 70 + i)).ok());
    shared_objects.push_back(name);
  }
  ShareIndexEntry entry;
  entry.logical_size = 512;
  entry.t = t;
  entry.n = 3;
  entry.refcount = 1;
  entry.shares = {{0, 0}, {1, 1}, {2, 2}};
  ASSERT_TRUE(index.Publish(shared_chunk, entry).ok());

  // This client crashed mid-Put after journaling uploads of the very same
  // content-addressed objects, plus one object nothing else references.
  const std::string orphan = ShareName(Id("mine-alone"), 0, t);
  ASSERT_TRUE(csps[3]->Upload(orphan, RandomContent(512, 80)).ok());
  const std::string journal_path =
      StrCat(testing::TempDir(), "/cyrus-dedup-putwal-", ::getpid(), ".log");
  std::remove(journal_path.c_str());
  {
    auto journal_or = PutJournal::Open(journal_path);
    ASSERT_TRUE(journal_or.ok()) << journal_or.status();
    PutJournal& journal = **journal_or;
    const std::string version_id = Id("crashed-put-version").ToHex();
    ASSERT_TRUE(journal.BeginIntent(version_id, "t/crash/file.bin").ok());
    for (uint32_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(journal
                      .AppendShare(version_id, "csp" + std::to_string(i),
                                   shared_objects[i])
                      .ok());
    }
    ASSERT_TRUE(journal.AppendShare(version_id, "csp3", orphan).ok());
  }

  CyrusConfig config = ConvergentConfig("crash", &index);
  config.journal_path = journal_path;
  TestCloud cloud = MakeCloud(std::move(config), csps);
  auto report = cloud.client->RecoverFromJournal();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rolled_back, 1u);
  // Rollback deleted only the truly unreferenced object; the three the
  // shared index records survive for the tenant that reads through them.
  EXPECT_EQ(report->orphan_shares_deleted, 1u);
  EXPECT_FALSE(csps[3]->Download(orphan).ok());
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(csps[i]->Download(shared_objects[i]).ok()) << shared_objects[i];
  }
  std::remove(journal_path.c_str());
}

TEST(DedupE2ETest, GatewayChargesLogicalBytesAndReportsDedup) {
  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  ASSERT_TRUE(index_or.ok());
  ShareIndex& index = **index_or;

  auto csps = MakeCsps();
  std::vector<std::unique_ptr<CyrusClient>> shard_clients;
  for (int s = 0; s < 2; ++s) {
    TestCloud shard = MakeCloud(
        ConvergentConfig(StrCat("shard-", s), &index), csps);
    shard_clients.push_back(std::move(shard.client));
  }
  GatewayOptions options;
  auto gateway_or = GatewayService::Create(options, std::move(shard_clients));
  ASSERT_TRUE(gateway_or.ok()) << gateway_or.status();
  GatewayService& gateway = **gateway_or;
  ASSERT_TRUE(gateway.RegisterTenant("acme").ok());
  ASSERT_TRUE(gateway.RegisterTenant("globex").ok());

  const Bytes shared_doc = RandomContent(24 * 1024, 41);
  ASSERT_TRUE(gateway.Put("acme", "handbook.pdf", shared_doc).ok());
  ASSERT_TRUE(gateway.Put("globex", "handbook.pdf", shared_doc).ok());

  const GatewayStats stats = gateway.Stats();
  ASSERT_TRUE(stats.dedup_enabled);
  // Each tenant is billed the full logical size...
  EXPECT_EQ(stats.tenant_stored_bytes.at("acme"), shared_doc.size());
  EXPECT_EQ(stats.tenant_stored_bytes.at("globex"), shared_doc.size());
  // ...while the deployment stores the bytes once.
  EXPECT_EQ(stats.dedup_unique_bytes, stats.dedup_logical_bytes / 2);
  EXPECT_NEAR(stats.dedup_ratio, 2.0, 0.01);
}

}  // namespace
}  // namespace cyrus
