// Degraded-mode chaos battery (ctest label `chaos`; scripts/check.sh
// --chaos, also run under TSan in the tsan tier).
//
// Exercises the robustness engine end to end against hard CSP outages,
// mid-Put crashes, slow providers, and silent download corruption:
//   - quorum Put: a file commits degraded when a provider is down for the
//     whole run, the shortfall lands in the repair debt ledger, and a
//     scrub pass after recovery drives the debt gauge back to zero;
//   - hedged Get: a provider sleeping tens of milliseconds per call never
//     puts a pipelined Get on its tail once backup downloads are enabled;
//   - circuit breaker: consecutive failures trip a CSP out of placement,
//     and the scrub-driven half-open probe re-admits it after recovery;
//   - crash-safe Put: an interrupted Put is rolled forward (shares were
//     durable) or its orphan shares are deleted from every provider.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

Bytes RandomContent(Rng& rng, size_t size) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

struct ChaosCloud {
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

// Base config: t=2, test chunker (~1 KB chunks), private metrics registry.
CyrusConfig ChaosConfig(obs::MetricsRegistry* metrics, uint64_t seed) {
  CyrusConfig config;
  config.client_id = "chaos-device";
  config.key_string = StrCat("chaos key ", seed);
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.transfer_concurrency = 4;
  config.transfer_retry.seed = seed;
  config.transfer_retry.max_attempts = 2;
  config.metrics = metrics;
  return config;
}

// Registers `num_csps` simulated providers behind fault injectors; the
// caller customizes per-CSP faults via `tweak(i, options)` before wiring.
ChaosCloud MakeChaosCloud(
    CyrusConfig config, int num_csps, uint64_t seed,
    const std::function<void(int, FaultInjectionOptions&)>& tweak = {},
    const std::function<void(int, CspProfile&)>& profile_tweak = {}) {
  ChaosCloud cloud;
  cloud.metrics = std::make_unique<obs::MetricsRegistry>();
  if (config.metrics == nullptr) {
    config.metrics = cloud.metrics.get();
  }
  obs::MetricsRegistry* metrics = config.metrics;

  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();

  for (int i = 0; i < num_csps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("chaos-csp", i);
    FaultInjectionOptions faults;
    faults.seed = seed * 31 + static_cast<uint64_t>(i);
    faults.metrics = metrics;
    if (tweak) {
      tweak(i, faults);
    }
    auto injector = std::make_shared<FaultInjectingConnector>(
        std::make_shared<SimulatedCsp>(o), faults);
    cloud.faults.push_back(injector);
    CspProfile profile;
    profile.rtt_ms = 40.0;
    profile.download_bytes_per_sec = 10e6;
    profile.upload_bytes_per_sec = 5e6;
    if (profile_tweak) {
      profile_tweak(i, profile);
    }
    auto added = cloud.client->AddCsp(injector, profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

size_t TotalObjects(const ChaosCloud& cloud) {
  size_t total = 0;
  for (const auto& fault : cloud.faults) {
    auto listing = fault->List("");
    if (listing.ok()) {
      total += listing->size();
    }
  }
  return total;
}

// Acceptance chaos path: one CSP hard-down for the whole run. A pipelined
// multi-chunk Put must still commit (degraded), the missing shares must
// show up in the cyrus_degraded_shares debt gauge, and a scrub pass after
// the provider recovers must rebuild them and drive the gauge to zero.
TEST(DegradedChaosTest, QuorumPutDegradedThenScrubHeals) {
  const uint64_t seed = 0xDE64AD01;
  Rng rng(seed);
  CyrusConfig config = ChaosConfig(nullptr, seed);
  // Force the Eq.-1 sizing off the feasible range so Put falls back to
  // n = |active| = 5: every chunk then wants a share on every CSP and the
  // down provider's share cannot be re-placed elsewhere.
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;
  config.put_failure_budget = 1;
  ChaosCloud cloud = MakeChaosCloud(std::move(config), /*num_csps=*/5, seed);
  // Down from just after registration (AddCsp authenticates) through the
  // whole transfer: the provider never sees a single share.
  cloud.faults[0]->set_permanently_down(true);

  const Bytes content = RandomContent(rng, 16 * 1024);
  auto put = cloud.client->Put("degraded-file", content);
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_EQ(put->n, 5u);
  EXPECT_GT(put->degraded_chunks, 0u);
  EXPECT_GT(put->missing_shares, 0u);

  // The debt is booked: ledger and gauge agree and are nonzero.
  RepairEngine& repair = cloud.client->repair_engine();
  EXPECT_GT(repair.OutstandingDegradedShares(), 0u);
  obs::MetricsRegistry* metrics = cloud.metrics.get();
  EXPECT_GT(metrics->GetGauge("cyrus_degraded_shares", {}, "")->value(), 0.0);

  // Degraded read: quorum shares are enough to reconstruct.
  auto get = cloud.client->Get("degraded-file");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);

  // Provider comes back; the scrub pass completes the degraded writes.
  cloud.faults[0]->set_permanently_down(false);
  ASSERT_TRUE(cloud.client->MarkCspRecovered(0).ok());
  auto scrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->stats.shares_rebuilt, 0u);
  EXPECT_EQ(repair.OutstandingDegradedShares(), 0u);
  EXPECT_EQ(metrics->GetGauge("cyrus_degraded_shares", {}, "")->value(), 0.0);
  EXPECT_EQ(metrics->GetGauge("cyrus_degraded_chunks", {}, "")->value(), 0.0);

  // Every chunk is back at full redundancy and decodes clean.
  for (const ChunkHealth& health : cloud.client->ScrubScan()) {
    EXPECT_EQ(health.missing(), 0u) << health.chunk_id.ToHex();
  }
  auto get_after = cloud.client->Get("degraded-file");
  ASSERT_TRUE(get_after.ok()) << get_after.status();
  EXPECT_EQ(get_after->content, content);
}

// Satellite: two of six CSPs hard-down from the start. With a failure
// budget of 2 the Put must still succeed (degraded), and the content must
// round-trip through the surviving providers.
TEST(DegradedChaosTest, PutSucceedsWithTwoCspsHardDown) {
  const uint64_t seed = 0xDE64AD02;
  Rng rng(seed);
  CyrusConfig config = ChaosConfig(nullptr, seed);
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;  // infeasible -> n = |active| = 6
  config.put_failure_budget = 2;
  ChaosCloud cloud = MakeChaosCloud(std::move(config), /*num_csps=*/6, seed);
  cloud.faults[0]->set_permanently_down(true);
  cloud.faults[1]->set_permanently_down(true);

  const Bytes content = RandomContent(rng, 12 * 1024);
  auto put = cloud.client->Put("two-down", content);
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_GT(put->degraded_chunks, 0u);

  auto get = cloud.client->Get("two-down");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

// Satellite: one provider sleeps up to 30 real milliseconds per call. With
// hedging enabled the Get must finish with backup downloads covering the
// straggler, and the reassembled bytes must be intact.
TEST(DegradedChaosTest, HedgedGetUnderSlowCsp) {
  const uint64_t seed = 0xDE64AD03;
  Rng rng(seed);
  CyrusConfig config = ChaosConfig(nullptr, seed);
  config.hedge.enabled = true;
  config.hedge.default_deadline_ms = 5.0;
  config.hedge.min_deadline_ms = 2.0;
  config.hedge.deadline_factor = 2.0;
  config.hedge.max_hedges = 2;
  ChaosCloud cloud = MakeChaosCloud(
      std::move(config), /*num_csps=*/3, seed,
      [](int i, FaultInjectionOptions& f) {
        if (i == 0) {
          f.real_sleep_max_ms = 30.0;  // the tail the hedge must cover
        }
      },
      [](int i, CspProfile& profile) {
        // Make the sleepy CSP the selector's favourite, so it lands in the
        // primary set of (virtually) every chunk.
        profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
      });

  const Bytes content = RandomContent(rng, 12 * 1024);
  auto put = cloud.client->Put("slow-provider", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto get = cloud.client->Get("slow-provider");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_GE(get->hedged_downloads, 1u);
  EXPECT_GT(cloud.metrics->GetCounter("cyrus_hedged_requests_total", {}, "")->value(),
            0u);
}

// Circuit breaker lifecycle: consecutive failures trip the CSP out of
// placement, cooldown expiry plus the scrub-driven half-open probe
// re-admits it once the provider is healthy again.
TEST(DegradedChaosTest, CircuitBreakerTripsAndRecoversViaScrubProbe) {
  const uint64_t seed = 0xDE64AD04;
  Rng rng(seed);
  CyrusConfig config = ChaosConfig(nullptr, seed);
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 2;
  config.breaker.open_cooldown_seconds = 30.0;
  config.breaker.half_open_successes = 1;
  ChaosCloud cloud = MakeChaosCloud(
      std::move(config), /*num_csps=*/4, seed, /*tweak=*/{},
      [](int i, CspProfile& profile) {
        // The doomed CSP is the selector's first choice, so the Get is
        // guaranteed to hit it and feed the breaker real failures.
        profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
      });

  const Bytes content = RandomContent(rng, 8 * 1024);
  auto put = cloud.client->Put("breaker-file", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto breaker = cloud.client->breaker_for(0);
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);

  // Provider dies; the gather path's failures trip the breaker, whose
  // transition callback evicts the CSP from placement.
  cloud.faults[0]->set_permanently_down(true);
  auto get = cloud.client->Get("breaker-file");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);

  // Provider recovers; after the cooldown the scrub's probe half-opens the
  // breaker, the probe List succeeds, and the close callback re-admits the
  // CSP - no manual MarkCspRecovered anywhere.
  cloud.faults[0]->set_permanently_down(false);
  cloud.client->set_time(cloud.client->now() + 60.0);
  auto scrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);

  auto get_after = cloud.client->Get("breaker-file");
  ASSERT_TRUE(get_after.ok()) << get_after.status();
  EXPECT_EQ(get_after->content, content);
}

// Crash roll-forward: every share lands, then the client "dies" during the
// metadata publish (each provider crashes after one successful upload).
// The next session must roll the journaled intent forward and serve the
// file.
TEST(DegradedChaosTest, CrashSafePutRollsForward) {
  const uint64_t seed = 0xDE64AD05;
  Rng rng(seed);
  const std::string journal_path =
      StrCat(testing::TempDir(), "/cyrus-journal-fwd-", seed, ".log");
  std::remove(journal_path.c_str());

  auto make_config = [&](uint64_t salt) {
    CyrusConfig config = ChaosConfig(nullptr, seed);
    config.transfer_concurrency = 1;  // deterministic upload order
    config.transfer_retry.max_attempts = 1;
    config.journal_path = journal_path;
    (void)salt;
    return config;
  };
  ChaosCloud cloud = MakeChaosCloud(make_config(0), /*num_csps=*/3, seed,
                                    [](int, FaultInjectionOptions& f) {
                                      f.down_after_uploads = 1;
                                    });

  const Bytes content = RandomContent(rng, 200);  // single chunk
  auto put = cloud.client->Put("crashed-file", content);
  // The chunk's shares landed (first upload per provider), then every
  // provider died before the metadata reached meta_t of them.
  ASSERT_FALSE(put.ok());
  ASSERT_NE(cloud.client->journal(), nullptr);
  ASSERT_EQ(cloud.client->journal()->PendingIntents().size(), 1u);
  EXPECT_TRUE(cloud.client->journal()->PendingIntents()[0].has_metadata);

  // "Restart": drop the client (closing the journal), revive the
  // providers, and bring up a fresh session over the same accounts.
  cloud.client.reset();
  for (auto& fault : cloud.faults) {
    fault->set_permanently_down(false);
  }
  auto client2 = CyrusClient::Create(make_config(1));
  ASSERT_TRUE(client2.ok()) << client2.status();
  for (size_t i = 0; i < cloud.faults.size(); ++i) {
    CspProfile profile;
    auto added = (*client2)->AddCsp(cloud.faults[i], profile, Credentials{"token"});
    ASSERT_TRUE(added.ok()) << added.status();
  }
  auto recovery = (*client2)->RecoverFromJournal();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovery->intents_seen, 1u);
  EXPECT_EQ(recovery->rolled_forward, 1u);
  EXPECT_EQ(recovery->rolled_back, 0u);
  EXPECT_TRUE((*client2)->journal()->PendingIntents().empty());

  auto get = (*client2)->Get("crashed-file");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  std::remove(journal_path.c_str());
}

// Crash roll-back: the Put dies mid-scatter with only a sub-quorum of one
// chunk's shares durable. The next session must delete every journaled
// orphan object - verified by listing all providers - and retire the
// intent.
TEST(DegradedChaosTest, CrashSafePutDeletesOrphans) {
  const uint64_t seed = 0xDE64AD06;
  Rng rng(seed);
  const std::string journal_path =
      StrCat(testing::TempDir(), "/cyrus-journal-gc-", seed, ".log");
  std::remove(journal_path.c_str());

  auto make_config = [&] {
    CyrusConfig config = ChaosConfig(nullptr, seed);
    config.transfer_concurrency = 1;    // strictly sequential chunks
    config.pipeline_window_chunks = 1;
    config.transfer_retry.max_attempts = 1;
    config.journal_path = journal_path;
    return config;
  };
  // Providers 0 and 1 crash after their first successful upload: chunk 1
  // scatters fully, chunk 2 then reaches only provider 2 and the Put dies
  // below quorum with no metadata record.
  ChaosCloud cloud = MakeChaosCloud(make_config(), /*num_csps=*/3, seed,
                                    [](int i, FaultInjectionOptions& f) {
                                      if (i < 2) {
                                        f.down_after_uploads = 1;
                                      }
                                    });

  const Bytes content = RandomContent(rng, 8 * 1024);  // multi-chunk
  auto put = cloud.client->Put("orphaned-file", content);
  ASSERT_FALSE(put.ok());
  ASSERT_NE(cloud.client->journal(), nullptr);
  ASSERT_EQ(cloud.client->journal()->PendingIntents().size(), 1u);
  EXPECT_FALSE(cloud.client->journal()->PendingIntents()[0].has_metadata);
  EXPECT_GT(TotalObjects(cloud), 0u);  // orphan shares really exist

  cloud.client.reset();
  for (auto& fault : cloud.faults) {
    fault->set_permanently_down(false);
  }
  auto client2 = CyrusClient::Create(make_config());
  ASSERT_TRUE(client2.ok()) << client2.status();
  for (size_t i = 0; i < cloud.faults.size(); ++i) {
    CspProfile profile;
    auto added = (*client2)->AddCsp(cloud.faults[i], profile, Credentials{"token"});
    ASSERT_TRUE(added.ok()) << added.status();
  }
  auto recovery = (*client2)->RecoverFromJournal();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovery->intents_seen, 1u);
  EXPECT_EQ(recovery->rolled_back, 1u);
  EXPECT_EQ(recovery->rolled_forward, 0u);
  EXPECT_GT(recovery->orphan_shares_deleted, 0u);
  EXPECT_TRUE((*client2)->journal()->PendingIntents().empty());

  // Every provider is empty again: no orphan survived the roll-back.
  EXPECT_EQ(TotalObjects(cloud), 0u);
  std::remove(journal_path.c_str());
}

// Satellite: seeded download corruption. Every Download from one provider
// returns flipped bytes; the decode-integrity path must detect it, pull
// the redundant shares, error-correct, and still return intact content.
TEST(DegradedChaosTest, DownloadCorruptionIsCorrected) {
  const uint64_t seed = 0xDE64AD07;
  Rng rng(seed);
  CyrusConfig config = ChaosConfig(nullptr, seed);
  // Pin n = 5: every chunk keeps a share on the corrupting CSP, and with
  // t = 2 the decoder can correct floor((5-2)/2) = 1 bad share.
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;
  ChaosCloud cloud = MakeChaosCloud(
      std::move(config), /*num_csps=*/5, seed,
      [](int i, FaultInjectionOptions& f) {
        if (i == 0) {
          f.download_corrupt_prob = 1.0;  // every download flips bytes
        }
      },
      [](int i, CspProfile& profile) {
        // The corrupting CSP looks fastest, so the selector picks it.
        profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
      });

  const Bytes content = RandomContent(rng, 6 * 1024);
  auto put = cloud.client->Put("rotten-share", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto get = cloud.client->Get("rotten-share");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_GT(cloud.faults[0]->counters().downloads_corrupted, 0u);
}

}  // namespace
}  // namespace cyrus
