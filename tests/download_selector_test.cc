#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <set>

#include "src/opt/download_selector.h"

namespace cyrus {
namespace {

constexpr double kTol = 1e-6;

DownloadProblem TwoFastOneSlow() {
  DownloadProblem p;
  p.csp_bandwidth = {15e6, 15e6, 2e6};  // bytes/sec
  p.t = 2;
  DownloadChunk chunk;
  chunk.share_bytes = 10e6;
  chunk.stored_at = {0, 1, 2};
  p.chunks = {chunk};
  return p;
}

void ExpectValidAssignment(const DownloadProblem& p, const DownloadAssignment& a) {
  ASSERT_EQ(a.selected.size(), p.chunks.size());
  for (size_t r = 0; r < p.chunks.size(); ++r) {
    EXPECT_EQ(a.selected[r].size(), p.t) << "chunk " << r;
    std::set<int> uniq(a.selected[r].begin(), a.selected[r].end());
    EXPECT_EQ(uniq.size(), p.t) << "chunk " << r << " has duplicate CSPs";
    for (int c : a.selected[r]) {
      const auto& stored = p.chunks[r].stored_at;
      EXPECT_NE(std::find(stored.begin(), stored.end(), c), stored.end())
          << "chunk " << r << " downloaded from CSP " << c << " without a share";
    }
  }
}

TEST(OptimalSelectorTest, PrefersFastClouds) {
  DownloadProblem p = TwoFastOneSlow();
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  EXPECT_EQ((std::set<int>{a->selected[0].begin(), a->selected[0].end()}),
            (std::set<int>{0, 1}));
  EXPECT_NEAR(a->predicted_seconds, 10e6 / 15e6, kTol);
}

TEST(OptimalSelectorTest, SpreadsLoadAcrossEqualClouds) {
  // 4 equal clouds, 4 chunks, t=2: each cloud should carry 2 shares, not
  // have all chunks pile onto the first two.
  DownloadProblem p;
  p.csp_bandwidth = {1e6, 1e6, 1e6, 1e6};
  p.t = 2;
  for (int r = 0; r < 4; ++r) {
    DownloadChunk c;
    c.share_bytes = 1e6;
    c.stored_at = {0, 1, 2, 3};
    p.chunks.push_back(c);
  }
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  std::vector<int> per_csp(4, 0);
  for (const auto& sel : a->selected) {
    for (int c : sel) {
      per_csp[c]++;
    }
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(per_csp[c], 2) << "csp " << c;
  }
  EXPECT_NEAR(a->predicted_seconds, 2.0, kTol);
}

TEST(OptimalSelectorTest, UsesSlowCloudWhenBeneficial) {
  // 1 fast (10 MB/s) + 1 slow (5 MB/s) + 1 very slow (1 MB/s); 3 chunks of
  // 10 MB shares, t=2, stored everywhere. All-on-fastest-two gives
  // max(30/10, 30/5) = 6 s. Offloading one share to the very slow cloud
  // gives max(30/10, 20/5, 10/1) = 10 s - worse. So optimal keeps the two
  // fastest but balances: expected 6 s.
  DownloadProblem p;
  p.csp_bandwidth = {10e6, 5e6, 1e6};
  p.t = 2;
  for (int r = 0; r < 3; ++r) {
    DownloadChunk c;
    c.share_bytes = 10e6;
    c.stored_at = {0, 1, 2};
    p.chunks.push_back(c);
  }
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  EXPECT_NEAR(a->predicted_seconds, 6.0, 0.01);
}

TEST(OptimalSelectorTest, LargeProblemsUseTheGreedyPathAndStayBalanced) {
  // Past kMaxExactChunks the selector must not run the per-chunk MILP
  // (which is cubic in chunk count and used to take minutes for a
  // multi-MB file at small chunk sizes). The greedy path still has to
  // produce a valid, near-balanced assignment: with uniform chunks and
  // every share everywhere, the completion time should sit at the fluid
  // optimum t*R*b / sum(bandwidth), not pile onto the fastest clouds.
  DownloadProblem p;
  p.csp_bandwidth = {15e6, 15e6, 12e6, 8e6, 2e6};
  p.t = 2;
  const size_t R = 500;
  for (size_t r = 0; r < R; ++r) {
    DownloadChunk c;
    c.share_bytes = 1e5;
    c.stored_at = {0, 1, 2, 3, 4};
    p.chunks.push_back(c);
  }
  OptimalDownloadSelector selector;
  const auto start = std::chrono::steady_clock::now();
  auto a = selector.Select(p);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  EXPECT_LT(elapsed_s, 2.0) << "large-R selection must not hit the MILP";
  double total_bw = 0;
  for (double bw : p.csp_bandwidth) {
    total_bw += bw;
  }
  const double fluid_optimum = p.t * R * 1e5 / total_bw;
  EXPECT_LT(a->predicted_seconds, 1.25 * fluid_optimum);
}

TEST(OptimalSelectorTest, RespectsClientBandwidthCap) {
  DownloadProblem p = TwoFastOneSlow();
  p.client_bandwidth = 4e6;  // total cap below the 30 MB/s CSP capacity
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  // 2 shares x 10 MB over a 4 MB/s pipe: 5 seconds.
  EXPECT_NEAR(a->predicted_seconds, 20e6 / 4e6, kTol);
}

TEST(OptimalSelectorTest, HonorsStorageFeasibility) {
  // The fastest CSP holds no share of chunk 0; the selector must not use it.
  DownloadProblem p;
  p.csp_bandwidth = {100e6, 1e6, 1e6};
  p.t = 2;
  DownloadChunk c;
  c.share_bytes = 1e6;
  c.stored_at = {1, 2};
  p.chunks = {c};
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
}

TEST(OptimalSelectorTest, FailsWhenTooFewReplicas) {
  DownloadProblem p = TwoFastOneSlow();
  p.chunks[0].stored_at = {0};  // only one share location but t = 2
  OptimalDownloadSelector selector;
  EXPECT_EQ(selector.Select(p).status().code(), StatusCode::kFailedPrecondition);
}

TEST(OptimalSelectorTest, RejectsZeroBandwidth) {
  DownloadProblem p = TwoFastOneSlow();
  p.csp_bandwidth[1] = 0.0;
  OptimalDownloadSelector selector;
  EXPECT_EQ(selector.Select(p).status().code(), StatusCode::kInvalidArgument);
}

TEST(OptimalSelectorTest, EmptyProblem) {
  DownloadProblem p;
  p.csp_bandwidth = {1e6};
  p.t = 1;
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->predicted_seconds, 0.0);
}

TEST(OptimalSelectorTest, TEqualsStoredCount) {
  // t equals the number of holders: forced selection.
  DownloadProblem p;
  p.csp_bandwidth = {1e6, 2e6, 3e6};
  p.t = 3;
  DownloadChunk c;
  c.share_bytes = 3e6;
  c.stored_at = {0, 1, 2};
  p.chunks = {c};
  OptimalDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  EXPECT_NEAR(a->predicted_seconds, 3.0, kTol);  // slowest CSP dominates
}

TEST(OptimalSelectorTest, NeverWorseThanGreedy) {
  // Property: on a batch of heterogeneous problems, the optimizer's
  // predicted time is <= the greedy-fastest baseline's.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DownloadProblem p;
    const size_t C = 3 + rng.NextBelow(4);
    for (size_t c = 0; c < C; ++c) {
      p.csp_bandwidth.push_back(rng.NextDouble(1e6, 20e6));
    }
    p.t = 2;
    const size_t R = 1 + rng.NextBelow(6);
    for (size_t r = 0; r < R; ++r) {
      DownloadChunk chunk;
      chunk.share_bytes = rng.NextDouble(0.5e6, 8e6);
      for (size_t c = 0; c < C; ++c) {
        chunk.stored_at.push_back(static_cast<int>(c));
      }
      p.chunks.push_back(chunk);
    }
    OptimalDownloadSelector cyrus_sel;
    GreedyFastestDownloadSelector greedy_sel;
    auto a = cyrus_sel.Select(p);
    auto g = greedy_sel.Select(p);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(g.ok());
    EXPECT_LE(a->predicted_seconds, g->predicted_seconds + 1e-6) << "seed " << seed;
  }
}

TEST(RandomSelectorTest, ProducesValidAssignments) {
  DownloadProblem p = TwoFastOneSlow();
  RandomDownloadSelector selector(42);
  for (int i = 0; i < 10; ++i) {
    auto a = selector.Select(p);
    ASSERT_TRUE(a.ok());
    ExpectValidAssignment(p, *a);
  }
}

TEST(RandomSelectorTest, EventuallyPicksSlowCloud) {
  DownloadProblem p = TwoFastOneSlow();
  RandomDownloadSelector selector(1);
  bool used_slow = false;
  for (int i = 0; i < 50 && !used_slow; ++i) {
    auto a = selector.Select(p);
    ASSERT_TRUE(a.ok());
    for (int c : a->selected[0]) {
      used_slow |= (c == 2);
    }
  }
  EXPECT_TRUE(used_slow);  // uniform choice can't always dodge the slow CSP
}

TEST(RoundRobinSelectorTest, CyclesThroughCsps) {
  DownloadProblem p;
  p.csp_bandwidth = {1e6, 1e6, 1e6, 1e6};
  p.t = 1;
  for (int r = 0; r < 4; ++r) {
    DownloadChunk c;
    c.share_bytes = 1e6;
    c.stored_at = {0, 1, 2, 3};
    p.chunks.push_back(c);
  }
  RoundRobinDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  ExpectValidAssignment(p, *a);
  std::set<int> used;
  for (const auto& sel : a->selected) {
    used.insert(sel[0]);
  }
  EXPECT_EQ(used.size(), 4u);  // each chunk landed on a different CSP
}

TEST(GreedyFastestSelectorTest, AlwaysPicksTopBandwidth) {
  DownloadProblem p = TwoFastOneSlow();
  p.csp_bandwidth = {2e6, 15e6, 9e6};
  GreedyFastestDownloadSelector selector;
  auto a = selector.Select(p);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((std::set<int>{a->selected[0].begin(), a->selected[0].end()}),
            (std::set<int>{1, 2}));
}

TEST(FinalizeAssignmentTest, BandwidthAllocationConsistent) {
  DownloadProblem p = TwoFastOneSlow();
  auto a = FinalizeAssignment(p, {{0, 1}});
  ASSERT_GT(a.predicted_seconds, 0.0);
  // allocated bandwidth * time == load on each used CSP
  EXPECT_NEAR(a.allocated_bandwidth[0] * a.predicted_seconds, 10e6, 1.0);
  EXPECT_NEAR(a.allocated_bandwidth[1] * a.predicted_seconds, 10e6, 1.0);
  EXPECT_EQ(a.allocated_bandwidth[2], 0.0);
}


// --- Exact MILP selector and cross-selector optimality properties ---

// Brute force over all C(stored, t)^R assignments for tiny instances.
double BruteForceOptimum(const DownloadProblem& p) {
  std::vector<std::vector<std::vector<int>>> per_chunk_choices(p.chunks.size());
  for (size_t r = 0; r < p.chunks.size(); ++r) {
    const auto& stored = p.chunks[r].stored_at;
    const size_t count = stored.size();
    for (uint32_t mask = 0; mask < (1u << count); ++mask) {
      if (static_cast<uint32_t>(__builtin_popcount(mask)) != p.t) {
        continue;
      }
      std::vector<int> choice;
      for (size_t k = 0; k < count; ++k) {
        if (mask & (1u << k)) {
          choice.push_back(stored[k]);
        }
      }
      per_chunk_choices[r].push_back(std::move(choice));
    }
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<size_t> cursor(p.chunks.size(), 0);
  for (;;) {
    std::vector<std::vector<int>> assignment;
    for (size_t r = 0; r < p.chunks.size(); ++r) {
      assignment.push_back(per_chunk_choices[r][cursor[r]]);
    }
    best = std::min(best, FinalizeAssignment(p, std::move(assignment)).predicted_seconds);
    size_t r = 0;
    while (r < cursor.size() && ++cursor[r] == per_chunk_choices[r].size()) {
      cursor[r++] = 0;
    }
    if (r == cursor.size()) {
      break;
    }
  }
  return best;
}

TEST(ExactMilpSelectorTest, MatchesBruteForceOnSmallInstances) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    DownloadProblem p;
    const size_t C = 4;
    for (size_t c = 0; c < C; ++c) {
      p.csp_bandwidth.push_back(rng.NextDouble(1e6, 10e6));
    }
    p.t = 2;
    const size_t R = 1 + rng.NextBelow(3);
    for (size_t r = 0; r < R; ++r) {
      DownloadChunk chunk;
      chunk.share_bytes = rng.NextDouble(1e6, 5e6);
      chunk.stored_at = {0, 1, 2, 3};
      p.chunks.push_back(chunk);
    }
    ExactMilpDownloadSelector exact;
    auto solution = exact.Select(p);
    ASSERT_TRUE(solution.ok()) << "seed " << seed;
    EXPECT_NEAR(solution->predicted_seconds, BruteForceOptimum(p), 1e-5)
        << "seed " << seed;
  }
}

TEST(ExactMilpSelectorTest, LowerBoundsEveryOtherSelector) {
  for (uint64_t seed = 30; seed <= 45; ++seed) {
    Rng rng(seed);
    DownloadProblem p;
    for (size_t c = 0; c < 5; ++c) {
      p.csp_bandwidth.push_back(rng.NextDouble(1e6, 15e6));
    }
    p.t = 2;
    for (size_t r = 0; r < 4; ++r) {
      DownloadChunk chunk;
      chunk.share_bytes = rng.NextDouble(0.5e6, 4e6);
      chunk.stored_at = {0, 1, 2, 3, 4};
      p.chunks.push_back(chunk);
    }
    ExactMilpDownloadSelector exact;
    OptimalDownloadSelector cyrus_sel;
    GreedyFastestDownloadSelector greedy;
    RoundRobinDownloadSelector rr;
    auto exact_result = exact.Select(p);
    ASSERT_TRUE(exact_result.ok());
    for (DownloadSelector* s :
         std::initializer_list<DownloadSelector*>{&cyrus_sel, &greedy, &rr}) {
      auto result = s->Select(p);
      ASSERT_TRUE(result.ok()) << s->name();
      EXPECT_GE(result->predicted_seconds, exact_result->predicted_seconds - 1e-6)
          << s->name() << " seed " << seed;
    }
  }
}

TEST(OptimalSelectorTest, NearOptimalOnRandomInstances) {
  // Algorithm 1's per-chunk fixing should stay within a few percent of the
  // exact optimum on heterogeneous instances.
  double worst_ratio = 1.0;
  for (uint64_t seed = 50; seed <= 65; ++seed) {
    Rng rng(seed);
    DownloadProblem p;
    for (size_t c = 0; c < 6; ++c) {
      p.csp_bandwidth.push_back(rng.NextDouble(1e6, 20e6));
    }
    p.t = 2;
    for (size_t r = 0; r < 5; ++r) {
      DownloadChunk chunk;
      chunk.share_bytes = rng.NextDouble(0.5e6, 6e6);
      chunk.stored_at = {0, 1, 2, 3, 4, 5};
      p.chunks.push_back(chunk);
    }
    ExactMilpDownloadSelector exact;
    OptimalDownloadSelector cyrus_sel;
    auto exact_result = exact.Select(p);
    auto cyrus_result = cyrus_sel.Select(p);
    ASSERT_TRUE(exact_result.ok());
    ASSERT_TRUE(cyrus_result.ok());
    if (exact_result->predicted_seconds > 0) {
      worst_ratio = std::max(
          worst_ratio, cyrus_result->predicted_seconds / exact_result->predicted_seconds);
    }
  }
  EXPECT_LT(worst_ratio, 1.15);
}

}  // namespace
}  // namespace cyrus

