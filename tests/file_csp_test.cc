// Tests for the directory-backed connector and a full end-to-end CYRUS
// round trip over real files on disk.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/cloud/file_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

namespace fs = std::filesystem;

class FileCspTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            StrCat("cyrus-filecsp-", ::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(FileCspTest, EscapingRoundTrips) {
  const std::string names[] = {"simple", "meta-abc.0", "dir/slash", "sp ace",
                               "pct%sign", "..", "uni\xc3\xa9"};
  for (const std::string& name : names) {
    const std::string escaped = EscapeObjectName(name);
    EXPECT_EQ(escaped.find('/'), std::string::npos) << name;
    auto back = UnescapeObjectName(escaped);
    ASSERT_TRUE(back.ok()) << name;
    EXPECT_EQ(*back, name);
  }
}

TEST_F(FileCspTest, UnescapeRejectsBadEscapes) {
  EXPECT_FALSE(UnescapeObjectName("abc%2").ok());
  EXPECT_FALSE(UnescapeObjectName("abc%zz").ok());
}

TEST_F(FileCspTest, OpenCreatesDirectory) {
  auto csp = FileCsp::Open("disk", root_ / "nested" / "store");
  ASSERT_TRUE(csp.ok()) << csp.status();
  EXPECT_TRUE(fs::is_directory((*csp)->root()));
}

TEST_F(FileCspTest, OpenRejectsFileAtPath) {
  fs::create_directories(root_);
  const fs::path blocker = root_ / "blocker";
  { std::ofstream(blocker) << "x"; }
  EXPECT_FALSE(FileCsp::Open("disk", blocker).ok());
}

TEST_F(FileCspTest, UploadDownloadDeleteRoundTrip) {
  auto csp = std::move(FileCsp::Open("disk", root_)).value();
  ASSERT_TRUE(csp->Authenticate(Credentials{}).ok());
  const Bytes data = ToBytes("persisted bytes");
  ASSERT_TRUE(csp->Upload("share/with/slashes", data).ok());
  auto back = csp->Download("share/with/slashes");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  ASSERT_TRUE(csp->Delete("share/with/slashes").ok());
  EXPECT_EQ(csp->Download("share/with/slashes").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(csp->Delete("share/with/slashes").ok());  // idempotent
}

TEST_F(FileCspTest, OverwriteReplacesContent) {
  auto csp = std::move(FileCsp::Open("disk", root_)).value();
  ASSERT_TRUE(csp->Upload("obj", ToBytes("v1")).ok());
  ASSERT_TRUE(csp->Upload("obj", ToBytes("version two")).ok());
  EXPECT_EQ(ToString(*csp->Download("obj")), "version two");
}

TEST_F(FileCspTest, ListByPrefix) {
  auto csp = std::move(FileCsp::Open("disk", root_)).value();
  ASSERT_TRUE(csp->Upload("meta-1.0", ToBytes("m")).ok());
  ASSERT_TRUE(csp->Upload("meta-2.1", ToBytes("m")).ok());
  ASSERT_TRUE(csp->Upload("data-xyz", ToBytes("d")).ok());
  auto listing = csp->List("meta-");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
  auto everything = csp->List("");
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything->size(), 3u);
}

TEST_F(FileCspTest, BinaryContentSurvives) {
  auto csp = std::move(FileCsp::Open("disk", root_)).value();
  Rng rng(9);
  Bytes data(4096);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(csp->Upload("blob", data).ok());
  auto back = csp->Download("blob");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(FileCspTest, EndToEndCyrusOverRealDirectories) {
  // Full-stack round trip: a CYRUS client storing to three directories on
  // disk, then a second "device" recovering from them.
  CyrusConfig config;
  config.key_string = "file csp e2e";
  config.client_id = "writer";
  config.t = 2;
  config.epsilon = 1e-2;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  auto writer = std::move(CyrusClient::Create(config)).value();
  for (int i = 0; i < 3; ++i) {
    auto csp = FileCsp::Open(StrCat("disk", i), root_ / StrCat("csp", i));
    ASSERT_TRUE(csp.ok());
    ASSERT_TRUE(writer
                    ->AddCsp(std::shared_ptr<CloudConnector>(std::move(csp).value()),
                             CspProfile{}, Credentials{})
                    .ok());
  }
  Rng rng(10);
  Bytes content(24 * 1024);
  for (auto& b : content) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto put = writer->Put("disk-backed.bin", content);
  ASSERT_TRUE(put.ok()) << put.status();

  config.client_id = "reader";
  auto reader = std::move(CyrusClient::Create(config)).value();
  for (int i = 0; i < 3; ++i) {
    auto csp = FileCsp::Open(StrCat("disk", i), root_ / StrCat("csp", i));
    ASSERT_TRUE(csp.ok());
    ASSERT_TRUE(reader
                    ->AddCsp(std::shared_ptr<CloudConnector>(std::move(csp).value()),
                             CspProfile{}, Credentials{})
                    .ok());
  }
  ASSERT_TRUE(reader->Recover().ok());
  auto get = reader->Get("disk-backed.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);

  // Privacy on disk: no single directory contains a 16-byte window of the
  // plaintext.
  for (int i = 0; i < 3; ++i) {
    for (const auto& entry : fs::directory_iterator(root_ / StrCat("csp", i))) {
      std::ifstream file(entry.path(), std::ios::binary);
      Bytes stored((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
      if (stored.size() < 16) {
        continue;
      }
      const Bytes window(stored.begin(), stored.begin() + 16);
      EXPECT_EQ(std::search(content.begin(), content.end(), window.begin(),
                            window.end()),
                content.end());
    }
  }
}

}  // namespace
}  // namespace cyrus
