// Tests for the GF(2^8) kernel dispatch layer (src/rs/galois_kernels.h):
// CPUID-based selection, the CYRUS_CODEC_KERNEL override knob, the clean
// fallback ladder for kernels the host cannot run, and the edge spans
// (size 0, sub-vector-width) where the SIMD paths must hand off to the
// scalar tail without reading out of bounds.
#include "src/rs/galois_kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/rs/galois.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

// Restores runtime dispatch (and the saved env var) no matter how the test
// exits, so a failure cannot leak a forced kernel into the rest of the
// binary.
class DispatchGuard {
 public:
  DispatchGuard() {
    if (const char* env = std::getenv("CYRUS_CODEC_KERNEL")) {
      saved_ = env;
      had_env_ = true;
    }
  }
  ~DispatchGuard() {
    if (had_env_) {
      setenv("CYRUS_CODEC_KERNEL", saved_.c_str(), 1);
    } else {
      unsetenv("CYRUS_CODEC_KERNEL");
    }
    SetActiveGaloisKernelsForTest(nullptr);
  }

 private:
  std::string saved_;
  bool had_env_ = false;
};

TEST(GaloisKernelTest, ScalarKernelIsAlwaysSupported) {
  EXPECT_TRUE(GaloisKernelSupported(GaloisKernelKind::kScalar));
  EXPECT_EQ(ScalarGaloisKernels().kind, GaloisKernelKind::kScalar);
  EXPECT_EQ(GetGaloisKernels(GaloisKernelKind::kScalar), &ScalarGaloisKernels());
}

TEST(GaloisKernelTest, SelectHonorsExplicitScalarRequest) {
  EXPECT_EQ(SelectGaloisKernels("scalar").kind, GaloisKernelKind::kScalar);
}

TEST(GaloisKernelTest, SelectFallsBackCleanlyWhenKernelUnsupported) {
  // Whatever the host supports, every name must resolve to a *runnable*
  // kernel: an unsupported request degrades down the ladder
  // avx2 -> ssse3 -> scalar instead of crashing on an illegal instruction.
  const GaloisKernels& avx2 = SelectGaloisKernels("avx2");
  EXPECT_TRUE(GaloisKernelSupported(avx2.kind));
  if (!GaloisKernelSupported(GaloisKernelKind::kAvx2)) {
    EXPECT_NE(avx2.kind, GaloisKernelKind::kAvx2);
  }
  const GaloisKernels& ssse3 = SelectGaloisKernels("ssse3");
  EXPECT_TRUE(GaloisKernelSupported(ssse3.kind));
  if (!GaloisKernelSupported(GaloisKernelKind::kSsse3)) {
    EXPECT_EQ(ssse3.kind, GaloisKernelKind::kScalar);
  }
  // Unknown names resolve to the widest supported kernel, never a crash.
  const GaloisKernels& unknown = SelectGaloisKernels("quantum");
  EXPECT_TRUE(GaloisKernelSupported(unknown.kind));
}

TEST(GaloisKernelTest, EnvKnobOverridesCpuidDispatch) {
  DispatchGuard guard;
  setenv("CYRUS_CODEC_KERNEL", "scalar", 1);
  SetActiveGaloisKernelsForTest(nullptr);  // force re-dispatch
  EXPECT_EQ(ActiveGaloisKernels().kind, GaloisKernelKind::kScalar);

  // The knob also accepts the SIMD names, degrading to what the host runs.
  setenv("CYRUS_CODEC_KERNEL", "ssse3", 1);
  SetActiveGaloisKernelsForTest(nullptr);
  const GaloisKernels& picked = ActiveGaloisKernels();
  EXPECT_TRUE(GaloisKernelSupported(picked.kind));
  if (GaloisKernelSupported(GaloisKernelKind::kSsse3)) {
    EXPECT_EQ(picked.kind, GaloisKernelKind::kSsse3);
  } else {
    EXPECT_EQ(picked.kind, GaloisKernelKind::kScalar);
  }
}

TEST(GaloisKernelTest, UnsetKnobPicksWidestSupportedKernel) {
  DispatchGuard guard;
  unsetenv("CYRUS_CODEC_KERNEL");
  SetActiveGaloisKernelsForTest(nullptr);
  const GaloisKernels& picked = ActiveGaloisKernels();
  if (GaloisKernelSupported(GaloisKernelKind::kAvx2)) {
    EXPECT_EQ(picked.kind, GaloisKernelKind::kAvx2);
  } else if (GaloisKernelSupported(GaloisKernelKind::kSsse3)) {
    EXPECT_EQ(picked.kind, GaloisKernelKind::kSsse3);
  } else {
    EXPECT_EQ(picked.kind, GaloisKernelKind::kScalar);
  }
}

// Size-0 spans and spans narrower than one SIMD vector must behave exactly
// like scalar: no bytes touched for len 0, and the sub-width path (the
// scalar tail of the vector loops) must not read or write past `len`.
TEST(GaloisKernelTest, SizeZeroAndSubVectorSpansMatchScalar) {
  Rng rng(0xBEEF5EED);
  for (GaloisKernelKind kind :
       {GaloisKernelKind::kSsse3, GaloisKernelKind::kAvx2}) {
    const GaloisKernels* kernels = GetGaloisKernels(kind);
    if (kernels == nullptr) {
      continue;  // host cannot run it; covered by the fallback test above
    }
    SCOPED_TRACE(kernels->name);
    for (const size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{15},
                             size_t{16}, size_t{17}, size_t{31}}) {
      for (const uint8_t c : {uint8_t{0}, uint8_t{1}, uint8_t{0x1d}}) {
        Bytes src(len + 8), expect(len + 8), actual;
        for (size_t i = 0; i < src.size(); ++i) {
          src[i] = static_cast<uint8_t>(rng.Next());
          expect[i] = static_cast<uint8_t>(rng.Next());
        }
        actual = expect;
        // Canary bytes beyond len must stay untouched (the +8 slack).
        ScalarGaloisKernels().mul_add_row(c, src.data(), expect.data(), len);
        kernels->mul_add_row(c, src.data(), actual.data(), len);
        EXPECT_EQ(actual, expect) << "mul_add_row len=" << len << " c=" << int{c};
        ScalarGaloisKernels().mul_row(c, src.data(), expect.data(), len);
        kernels->mul_row(c, src.data(), actual.data(), len);
        EXPECT_EQ(actual, expect) << "mul_row len=" << len << " c=" << int{c};

        // encode_block with a single row degenerates to mul_add_row.
        uint8_t* dst_ptr = actual.data();
        kernels->encode_block(&c, 1, src.data(), len, &dst_ptr);
        ScalarGaloisKernels().mul_add_row(c, src.data(), expect.data(), len);
        EXPECT_EQ(actual, expect) << "encode_block len=" << len << " c=" << int{c};
      }
    }
  }
}

TEST(GaloisKernelTest, GaloisRowHelpersRunOnTheForcedKernel) {
  DispatchGuard guard;
  // Galois::MulAddRow delegates to the active kernel; forcing scalar and a
  // SIMD kernel must agree through the public entry point too.
  Rng rng(0xF0CA1);
  Bytes src(100), a(100), b(100);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(rng.Next());
    a[i] = b[i] = static_cast<uint8_t>(rng.Next());
  }
  SetActiveGaloisKernelsForTest(&ScalarGaloisKernels());
  Galois::MulAddRow(0x35, src, MutableByteSpan(a));
  SetActiveGaloisKernelsForTest(nullptr);
  Galois::MulAddRow(0x35, src, MutableByteSpan(b));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cyrus
