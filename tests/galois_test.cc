#include <gtest/gtest.h>

#include "src/rs/galois.h"

namespace cyrus {
namespace {

TEST(GaloisTest, AddIsXor) {
  EXPECT_EQ(Galois::Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Galois::Add(7, 7), 0);
}

TEST(GaloisTest, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Galois::Mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(Galois::Mul(0, static_cast<uint8_t>(a)), 0);
    EXPECT_EQ(Galois::Mul(static_cast<uint8_t>(a), 1), a);
  }
}

// Reference carry-less multiply-and-reduce, independent of the tables.
uint8_t SlowMul(uint8_t a, uint8_t b) {
  uint16_t product = 0;
  uint16_t shifted = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1 << bit)) {
      product ^= shifted << bit;
    }
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (product & (1 << bit)) {
      product ^= Galois::kPolynomial << (bit - 8);
    }
  }
  return static_cast<uint8_t>(product);
}

TEST(GaloisTest, MulMatchesSlowReference) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(Galois::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                SlowMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(GaloisTest, MulIsCommutativeAndAssociative) {
  const uint8_t vals[] = {1, 2, 3, 0x1d, 0x80, 0xff};
  for (uint8_t a : vals) {
    for (uint8_t b : vals) {
      EXPECT_EQ(Galois::Mul(a, b), Galois::Mul(b, a));
      for (uint8_t c : vals) {
        EXPECT_EQ(Galois::Mul(Galois::Mul(a, b), c), Galois::Mul(a, Galois::Mul(b, c)));
      }
    }
  }
}

TEST(GaloisTest, DistributesOverAdd) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      for (int c = 0; c < 256; c += 13) {
        const uint8_t lhs = Galois::Mul(static_cast<uint8_t>(a),
                                        Galois::Add(static_cast<uint8_t>(b),
                                                    static_cast<uint8_t>(c)));
        const uint8_t rhs =
            Galois::Add(Galois::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                        Galois::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(c)));
        EXPECT_EQ(lhs, rhs);
      }
    }
  }
}

TEST(GaloisTest, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = Galois::Inverse(static_cast<uint8_t>(a));
    EXPECT_EQ(Galois::Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(GaloisTest, DivIsMulByInverse) {
  for (int a = 0; a < 256; a += 9) {
    for (int b = 1; b < 256; b += 17) {
      EXPECT_EQ(Galois::Div(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                Galois::Mul(static_cast<uint8_t>(a),
                            Galois::Inverse(static_cast<uint8_t>(b))));
    }
  }
}

TEST(GaloisTest, DivRoundTrips) {
  for (int a = 0; a < 256; a += 4) {
    for (int b = 1; b < 256; b += 7) {
      const uint8_t q = Galois::Div(static_cast<uint8_t>(a), static_cast<uint8_t>(b));
      EXPECT_EQ(Galois::Mul(q, static_cast<uint8_t>(b)), a);
    }
  }
}

TEST(GaloisTest, PowBasics) {
  EXPECT_EQ(Galois::Pow(0, 0), 1);  // convention
  EXPECT_EQ(Galois::Pow(0, 5), 0);
  EXPECT_EQ(Galois::Pow(7, 0), 1);
  EXPECT_EQ(Galois::Pow(7, 1), 7);
  EXPECT_EQ(Galois::Pow(2, 2), 4);
}

TEST(GaloisTest, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 31) {
    uint8_t acc = 1;
    for (unsigned p = 0; p < 300; ++p) {
      EXPECT_EQ(Galois::Pow(static_cast<uint8_t>(a), p), acc) << "a=" << a << " p=" << p;
      acc = Galois::Mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(GaloisTest, GeneratorHasFullOrder) {
  // 2 is primitive: its powers hit every nonzero element exactly once.
  std::array<bool, 256> seen{};
  uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = Galois::Mul(x, Galois::kGenerator);
  }
  EXPECT_EQ(x, 1);  // order divides 255 and is exactly 255
}

TEST(GaloisTest, MulAddRowAccumulates) {
  Bytes src = {1, 2, 3, 0, 255};
  Bytes dst = {9, 9, 9, 9, 9};
  Bytes expected = dst;
  for (size_t i = 0; i < src.size(); ++i) {
    expected[i] = Galois::Add(expected[i], Galois::Mul(0x1d, src[i]));
  }
  Galois::MulAddRow(0x1d, src, dst);
  EXPECT_EQ(dst, expected);
}

TEST(GaloisTest, MulAddRowCoefficientZeroIsNoop) {
  Bytes src = {4, 5, 6};
  Bytes dst = {7, 8, 9};
  Galois::MulAddRow(0, src, dst);
  EXPECT_EQ(dst, (Bytes{7, 8, 9}));
}

TEST(GaloisTest, MulAddRowCoefficientOneIsXor) {
  Bytes src = {4, 5, 6};
  Bytes dst = {7, 8, 9};
  Galois::MulAddRow(1, src, dst);
  EXPECT_EQ(dst, (Bytes{4 ^ 7, 5 ^ 8, 6 ^ 9}));
}

TEST(GaloisTest, MulRowScales) {
  Bytes src = {0, 1, 2, 128};
  Bytes dst(4, 0xAA);
  Galois::MulRow(3, src, dst);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], Galois::Mul(3, src[i]));
  }
  Galois::MulRow(0, src, dst);
  EXPECT_EQ(dst, (Bytes{0, 0, 0, 0}));
}

// log(0) does not exist in GF(2^8); the table entry is deliberately
// poisoned with an out-of-range sentinel rather than a plausible-looking 0.
// This is a contract for kernel authors: any table-building code that
// copies log_table()[0] into SIMD constants without the zero guard indexes
// exp_table() out of bounds (510 entries, sentinel 0x1FF = 511) and trips
// ASan / a debug assert, instead of silently baking garbage into the
// multiply tables for every row-0 product.
TEST(GaloisTest, LogTableZeroEntryIsPoisonedSentinel) {
  EXPECT_EQ(Galois::log_table()[0], Galois::kLogZeroSentinel);
  // The sentinel must stay out of range of the doubled exp table even when
  // added to the largest legal logarithm (254): guard-free use is loud.
  EXPECT_GE(static_cast<size_t>(Galois::kLogZeroSentinel),
            Galois::exp_table().size());
  // Every *real* entry stays a valid logarithm.
  for (int b = 1; b < 256; ++b) {
    ASSERT_LT(Galois::log_table()[b], 255) << "log[" << b << "]";
    EXPECT_EQ(Galois::exp_table()[Galois::log_table()[b]], b);
  }
}

}  // namespace
}  // namespace cyrus
