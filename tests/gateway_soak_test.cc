// Scaled-down open-loop soak of the multi-tenant gateway on virtual time.
//
// The full 10k-client zipfian soak lives in bench/bench_gateway.cc; this
// test runs the same shape at CI scale (hundreds of tenants, thousands of
// arrivals) and asserts the *properties* rather than the numbers:
//
//   - the gateway survives a sustained zipfian arrival schedule;
//   - overload is shed exclusively through typed rejects (every failure
//     is either a gateway reject or a storage NotFound - nothing leaks);
//   - admission control isolates tenants: a tenant that stays inside its
//     quota is never rejected, no matter how hard the zipf head hammers
//     the service.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/gateway/admission.h"
#include "src/gateway/gateway.h"
#include "src/sim/event_queue.h"
#include "src/sim/zipf.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

std::unique_ptr<CyrusClient> MakeShardClient(int shard) {
  CyrusConfig config;
  config.client_id = StrCat("soak-shard-", shard);
  config.key_string = "gateway soak key";
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 1;
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 4; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("soak", shard, "-csp", i);
    auto added = client.value()->AddCsp(std::make_shared<SimulatedCsp>(o),
                                        CspProfile{}, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return std::move(client).value();
}

TEST(GatewaySoakTest, ZipfianOpenLoopShedsOnlyTypedRejects) {
  constexpr int kTenants = 200;
  constexpr int kArrivals = 4000;
  constexpr double kArrivalRate = 400.0;  // arrivals/sec of virtual time

  obs::MetricsRegistry metrics;
  GatewayOptions options;
  options.metrics = &metrics;
  options.per_tenant_metrics = false;  // keep label cardinality flat
  std::vector<std::unique_ptr<CyrusClient>> clients;
  for (int s = 0; s < 2; ++s) {
    clients.push_back(MakeShardClient(s));
  }
  auto created = GatewayService::Create(options, std::move(clients));
  ASSERT_TRUE(created.ok()) << created.status();
  GatewayService* gateway = created.value().get();

  // Zipf head tenants receive far more traffic than their contract allows;
  // the protected tenant's quota comfortably covers its share.
  TenantQuotas contract;
  contract.ops_per_sec = 20.0;
  contract.ops_burst = 20.0;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(gateway->RegisterTenant(StrCat("tenant-", t), contract).ok());
  }
  TenantQuotas generous;
  generous.ops_per_sec = 1000.0;
  ASSERT_TRUE(gateway->RegisterTenant("protected", generous).ok());

  EventQueue queue;
  ZipfGenerator zipf(kTenants, 0.9);
  Rng rng(20260809);

  int ok_ops = 0;
  int typed_rejects = 0;
  int untyped_failures = 0;
  int protected_rejects = 0;

  for (int i = 0; i < kArrivals; ++i) {
    const double when = i / kArrivalRate;
    queue.ScheduleAt(when, [&, i] {
      gateway->set_time(queue.now());
      const bool is_protected = i % 40 == 0;  // ~10 ops/s, inside quota
      const std::string tenant =
          is_protected ? "protected" : StrCat("tenant-", zipf.Next(rng));
      const std::string path = StrCat("f", rng.NextBelow(8), ".dat");
      Status status;
      if (rng.NextDouble() < 0.4) {
        status = gateway->Put(tenant, path, ToBytes(StrCat("p", i))).status();
      } else {
        status = gateway->Get(tenant, path).status();
      }
      if (status.ok() || status.code() == StatusCode::kNotFound) {
        ++ok_ops;
      } else if (IsGatewayReject(status)) {
        ++typed_rejects;
        if (is_protected) {
          ++protected_rejects;
        }
      } else {
        ++untyped_failures;
      }
    });
  }
  queue.RunUntilIdle();

  // Everything was either served or shed with a typed reject.
  EXPECT_EQ(ok_ops + typed_rejects, kArrivals);
  EXPECT_EQ(untyped_failures, 0);
  // The zipf head runs ~6x its contract, so shedding must have happened...
  EXPECT_GT(typed_rejects, 0);
  // ...but never to the tenant that stayed inside its quota.
  EXPECT_EQ(protected_rejects, 0);
  // And most of the offered load was still served.
  EXPECT_GT(ok_ops, kArrivals / 2);

  const GatewayStats stats = gateway->Stats();
  EXPECT_EQ(stats.rejects_total, static_cast<uint64_t>(typed_rejects));
  EXPECT_EQ(stats.num_tenants, static_cast<size_t>(kTenants) + 1);
}

}  // namespace
}  // namespace cyrus
