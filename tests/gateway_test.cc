// Multi-tenant gateway: shard routing, admission control, typed rejects,
// backpressure, the REST frontend, and concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/gateway/admission.h"
#include "src/gateway/gateway.h"
#include "src/gateway/gateway_rest.h"
#include "src/gateway/shard_map.h"
#include "src/rest/json.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

CyrusConfig ShardConfig(int shard) {
  CyrusConfig config;
  config.client_id = StrCat("gateway-shard-", shard);
  config.key_string = "gateway test key";
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 1;
  return config;
}

// One shard worker: a CyrusClient over its own pool of simulated CSPs.
std::unique_ptr<CyrusClient> MakeShardClient(int shard, int num_csps = 4) {
  auto client = CyrusClient::Create(ShardConfig(shard));
  EXPECT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < num_csps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("shard", shard, "-csp", i);
    auto added = client.value()->AddCsp(std::make_shared<SimulatedCsp>(o),
                                        CspProfile{}, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return std::move(client).value();
}

std::unique_ptr<GatewayService> MakeGateway(GatewayOptions options,
                                            int num_shards) {
  std::vector<std::unique_ptr<CyrusClient>> clients;
  for (int s = 0; s < num_shards; ++s) {
    clients.push_back(MakeShardClient(s));
  }
  auto gateway = GatewayService::Create(std::move(options), std::move(clients));
  EXPECT_TRUE(gateway.ok()) << gateway.status();
  return std::move(gateway).value();
}

GatewayOptions QuietOptions(obs::MetricsRegistry* metrics) {
  GatewayOptions options;
  options.metrics = metrics;
  // Generous defaults so tests opt *into* each limit explicitly.
  options.default_quotas = TenantQuotas{};
  options.shard_queue_reject_depth = 1 << 20;
  options.shard_depth_high = 1 << 19;
  return options;
}

// --- typed rejects -------------------------------------------------------

TEST(AdmissionTest, RejectStatusRoundTripsEveryReason) {
  for (RejectReason reason :
       {RejectReason::kUnknownTenant, RejectReason::kRateLimited,
        RejectReason::kByteQuota, RejectReason::kStorageQuota,
        RejectReason::kShardOverloaded, RejectReason::kWindowFull,
        RejectReason::kPrefetchShed}) {
    const Status status = MakeRejectStatus(reason, "detail");
    EXPECT_TRUE(IsGatewayReject(status)) << status;
    ASSERT_TRUE(RejectReasonOf(status).has_value()) << status;
    EXPECT_EQ(*RejectReasonOf(status), reason);
  }
}

TEST(AdmissionTest, OrdinaryErrorsAreNotRejects) {
  EXPECT_FALSE(IsGatewayReject(OkStatus()));
  EXPECT_FALSE(IsGatewayReject(NotFoundError("missing")));
  EXPECT_FALSE(IsGatewayReject(ResourceExhaustedError("disk full")));
  EXPECT_FALSE(RejectReasonOf(InternalError("gateway-rejectish")).has_value());
}

TEST(AdmissionTest, TokenBucketRefillsInVirtualTime) {
  TokenBucket bucket(/*rate=*/10.0, /*capacity=*/10.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(bucket.TryTake(0.0, 1.0)) << i;
  }
  EXPECT_FALSE(bucket.TryTake(0.0, 1.0));
  EXPECT_TRUE(bucket.TryTake(0.5, 5.0));   // half a second buys 5 tokens
  EXPECT_FALSE(bucket.TryTake(0.5, 1.0));
  EXPECT_TRUE(bucket.TryTake(10.0, 10.0));  // capped at capacity
  EXPECT_FALSE(bucket.TryTake(10.0, 1.0));
}

TEST(AdmissionTest, ZeroRateMeansUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryTake(0.0, 1e9));
  }
}

// --- tenancy -------------------------------------------------------------

TEST(GatewayTest, RegisterTenantValidatesNames) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  EXPECT_TRUE(gateway->RegisterTenant("alice").ok());
  EXPECT_EQ(gateway->RegisterTenant("alice").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(gateway->RegisterTenant("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(gateway->RegisterTenant("a/b").code(),
            StatusCode::kInvalidArgument);
}

TEST(GatewayTest, UnknownTenantGetsTypedReject) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  const Bytes payload = ToBytes("hello");
  Result<PutResult> put = gateway->Put("ghost", "file.txt", payload);
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(RejectReasonOf(put.status()), RejectReason::kUnknownTenant);
  EXPECT_EQ(put.status().code(), StatusCode::kPermissionDenied);
}

TEST(GatewayTest, TenantsAreIsolatedNamespaces) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 3);
  ASSERT_TRUE(gateway->RegisterTenant("alice").ok());
  ASSERT_TRUE(gateway->RegisterTenant("bob").ok());

  ASSERT_TRUE(gateway->Put("alice", "notes.txt", ToBytes("alice data")).ok());
  ASSERT_TRUE(gateway->Put("bob", "notes.txt", ToBytes("bob data")).ok());

  Result<GetResult> alice = gateway->Get("alice", "notes.txt");
  Result<GetResult> bob = gateway->Get("bob", "notes.txt");
  ASSERT_TRUE(alice.ok()) << alice.status();
  ASSERT_TRUE(bob.ok()) << bob.status();
  EXPECT_EQ(ToString(alice.value().content), "alice data");
  EXPECT_EQ(ToString(bob.value().content), "bob data");

  // Listing shows only the tenant's own namespace, qualifier stripped.
  Result<std::vector<FileListing>> listing = gateway->List("alice", "");
  ASSERT_TRUE(listing.ok()) << listing.status();
  ASSERT_EQ(listing.value().size(), 1u);
  EXPECT_EQ(listing.value()[0].name, "notes.txt");
}

TEST(GatewayTest, ListMergesAcrossShards) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 4);
  ASSERT_TRUE(gateway->RegisterTenant("carol").ok());
  std::set<int> shards_used;
  for (int i = 0; i < 16; ++i) {
    const std::string path = StrCat("dir/file-", i, ".dat");
    ASSERT_TRUE(gateway->Put("carol", path, ToBytes(StrCat("v", i))).ok());
    shards_used.insert(gateway->ShardFor("carol", path).value());
  }
  // 16 paths over 4 shards: consistent hashing should hit more than one.
  EXPECT_GT(shards_used.size(), 1u);

  Result<std::vector<FileListing>> listing = gateway->List("carol", "dir/");
  ASSERT_TRUE(listing.ok()) << listing.status();
  EXPECT_EQ(listing.value().size(), 16u);
  EXPECT_TRUE(std::is_sorted(
      listing.value().begin(), listing.value().end(),
      [](const FileListing& a, const FileListing& b) { return a.name < b.name; }));
}

// --- admission control ---------------------------------------------------

TEST(GatewayTest, OpRateQuotaShedsWithTypedReject) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  auto gateway = MakeGateway(options, 2);
  TenantQuotas quotas;
  quotas.ops_per_sec = 5.0;
  quotas.ops_burst = 5.0;
  ASSERT_TRUE(gateway->RegisterTenant("dave", quotas).ok());

  int admitted = 0;
  int rate_limited = 0;
  for (int i = 0; i < 10; ++i) {
    Result<GetResult> get = gateway->Get("dave", "missing.txt");
    if (RejectReasonOf(get.status()) == RejectReason::kRateLimited) {
      ++rate_limited;
    } else {
      ++admitted;  // NotFound from the store still means it was admitted
    }
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(rate_limited, 5);

  // Virtual time refills the bucket.
  gateway->set_time(1.0);
  Result<GetResult> after = gateway->Get("dave", "missing.txt");
  EXPECT_NE(RejectReasonOf(after.status()), RejectReason::kRateLimited);

  const GatewayStats stats = gateway->Stats();
  EXPECT_EQ(stats.rejects_by_reason.at("rate-limited"), 5u);
  EXPECT_EQ(stats.rejects_total, 5u);
}

TEST(GatewayTest, UploadByteQuotaShedsLargePuts) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 1);
  TenantQuotas quotas;
  quotas.upload_bytes_per_sec = 1024.0;
  quotas.bytes_burst = 1024.0;
  ASSERT_TRUE(gateway->RegisterTenant("erin", quotas).ok());

  const Bytes big(2048, 0x42);
  Result<PutResult> put = gateway->Put("erin", "big.bin", big);
  ASSERT_FALSE(put.ok());
  EXPECT_EQ(RejectReasonOf(put.status()), RejectReason::kByteQuota);

  const Bytes small(512, 0x41);
  EXPECT_TRUE(gateway->Put("erin", "small.bin", small).ok());
}

TEST(GatewayTest, StorageQuotaFreesOnDelete) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 1);
  TenantQuotas quotas;
  quotas.stored_bytes_limit = 1000;
  ASSERT_TRUE(gateway->RegisterTenant("frank", quotas).ok());

  ASSERT_TRUE(gateway->Put("frank", "a.bin", Bytes(600, 0x01)).ok());
  Result<PutResult> over = gateway->Put("frank", "b.bin", Bytes(600, 0x02));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(RejectReasonOf(over.status()), RejectReason::kStorageQuota);

  // Overwriting a file charges only the delta.
  EXPECT_TRUE(gateway->Put("frank", "a.bin", Bytes(900, 0x03)).ok());

  ASSERT_TRUE(gateway->Delete("frank", "a.bin").ok());
  EXPECT_TRUE(gateway->Put("frank", "b.bin", Bytes(600, 0x02)).ok());
  EXPECT_EQ(gateway->Stats().tenant_stored_bytes.at("frank"), 600u);
}

TEST(GatewayTest, ShardOverloadRejectsPastDepthLimit) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.shard_queue_reject_depth = 4;
  options.shard_op_overhead_s = 1.0;  // ops linger in the modeled queue
  auto gateway = MakeGateway(options, 1);
  ASSERT_TRUE(gateway->RegisterTenant("gail").ok());

  int overloaded = 0;
  for (int i = 0; i < 8; ++i) {
    Result<PutResult> put =
        gateway->Put("gail", StrCat("f", i), ToBytes("x"));
    if (RejectReasonOf(put.status()) == RejectReason::kShardOverloaded) {
      ++overloaded;
    }
  }
  EXPECT_EQ(overloaded, 4);  // first 4 fill the queue, rest shed

  // Draining the virtual queue restores admission.
  gateway->set_time(100.0);
  EXPECT_TRUE(gateway->Put("gail", "late", ToBytes("y")).ok());
}

// --- backpressure --------------------------------------------------------

TEST(GatewayTest, WindowShrinksUnderQueueDepthAndRecovers) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.max_tenant_window = 16;
  options.min_tenant_window = 2;
  options.shard_depth_high = 3;
  options.shard_depth_low = 1;
  options.shard_op_overhead_s = 1.0;
  auto gateway = MakeGateway(options, 1);
  ASSERT_TRUE(gateway->RegisterTenant("hank").ok());
  EXPECT_EQ(gateway->TenantWindow("hank"), 16u);

  for (int i = 0; i < 8; ++i) {
    (void)gateway->Put("hank", StrCat("f", i), ToBytes("x"));
  }
  EXPECT_EQ(gateway->TenantWindow("hank"), options.min_tenant_window);

  // Once the modeled queue drains, calm traffic regrows the window
  // additively (one slot per completed op).
  double now = 100.0;
  for (int i = 0; i < 6; ++i) {
    gateway->set_time(now);
    ASSERT_TRUE(gateway->Get("hank", "f0").ok());
    now += 10.0;
  }
  EXPECT_GT(gateway->TenantWindow("hank"), options.min_tenant_window);
}

TEST(GatewayTest, QuotaBurnShrinksWindow) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.max_tenant_window = 8;
  options.min_tenant_window = 1;
  options.quota_burn_high = 0.5;
  auto gateway = MakeGateway(options, 1);
  TenantQuotas quotas;
  quotas.ops_per_sec = 10.0;
  quotas.ops_burst = 10.0;
  ASSERT_TRUE(gateway->RegisterTenant("iris", quotas).ok());

  // Burn >50% of the bucket without advancing time: the window shrinks
  // even though the shard queue is idle.
  for (int i = 0; i < 8; ++i) {
    (void)gateway->Get("iris", "nofile");
  }
  EXPECT_LT(gateway->TenantWindow("iris"), 8u);
}

TEST(GatewayTest, BackpressureCanShrinkShardClientPipeline) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.shard_depth_high = 2;
  options.shard_op_overhead_s = 1.0;
  options.shrink_client_window = true;
  options.client_window_when_shrunk = 2;

  std::vector<std::unique_ptr<CyrusClient>> clients;
  clients.push_back(MakeShardClient(0));
  CyrusClient* shard_client = clients[0].get();
  const uint32_t original_window = shard_client->pipeline_window();
  auto gateway =
      GatewayService::Create(std::move(options), std::move(clients));
  ASSERT_TRUE(gateway.ok()) << gateway.status();
  ASSERT_TRUE(gateway.value()->RegisterTenant("judy").ok());

  for (int i = 0; i < 6; ++i) {
    (void)gateway.value()->Put("judy", StrCat("f", i), ToBytes("x"));
  }
  EXPECT_EQ(shard_client->pipeline_window(), 2u);

  // Recovery clears the override.
  gateway.value()->set_time(100.0);
  ASSERT_TRUE(gateway.value()->Get("judy", "f0").ok());
  EXPECT_EQ(shard_client->pipeline_window(), original_window);
}

// --- observability -------------------------------------------------------

TEST(GatewayTest, MetricsAndTracesCoverTheRequestPath) {
  obs::MetricsRegistry metrics;
  obs::TraceCollector traces(16);
  GatewayOptions options = QuietOptions(&metrics);
  options.traces = &traces;
  auto gateway = MakeGateway(options, 2);
  ASSERT_TRUE(gateway->RegisterTenant("kate").ok());
  ASSERT_TRUE(gateway->Put("kate", "doc.txt", ToBytes("payload")).ok());
  ASSERT_TRUE(gateway->Get("kate", "doc.txt").ok());

  const obs::RegistrySnapshot snapshot = metrics.Snapshot("cyrus_gateway_");
  std::set<std::string> families;
  for (const auto& metric : snapshot.metrics) {
    families.insert(metric.name);
  }
  EXPECT_TRUE(families.count("cyrus_gateway_ops_total"));
  EXPECT_TRUE(families.count("cyrus_gateway_shard_queue_depth"));
  EXPECT_TRUE(families.count("cyrus_gateway_request_latency_ms"));
  EXPECT_TRUE(families.count("cyrus_gateway_tenant_ops_total"));

  obs::Trace trace;
  ASSERT_TRUE(traces.Latest("gateway.put", &trace));
  EXPECT_NE(trace.FindSpan("admit+route"), nullptr);
  EXPECT_NE(trace.FindSpan("execute"), nullptr);
}

// --- range reads & prefetch shedding -------------------------------------

TEST(GatewayTest, GetRangeServesTheRequestedSlice) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  ASSERT_TRUE(gateway->RegisterTenant("vera").ok());
  Bytes content(20 * 1024);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(gateway->Put("vera", "movie.bin", content).ok());

  Result<GetResult> got = gateway->GetRange("vera", "movie.bin", 5000, 1234);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->content,
            Bytes(content.begin() + 5000, content.begin() + 5000 + 1234));
  EXPECT_EQ(got->range_offset, 5000u);
  EXPECT_EQ(got->file_size, content.size());

  // Past-the-end start is the client's InvalidArgument, not a reject.
  Result<GetResult> past =
      gateway->GetRange("vera", "movie.bin", content.size() + 1, 1);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(IsGatewayReject(past.status()));
}

TEST(GatewayTest, PrefetchShedsBeforeForegroundUnderQuotaBurn) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.prefetch_shed_burn = 0.5;
  auto gateway = MakeGateway(options, 1);
  TenantQuotas quotas;
  quotas.ops_per_sec = 10.0;
  quotas.ops_burst = 10.0;
  ASSERT_TRUE(gateway->RegisterTenant("pia", quotas).ok());
  ASSERT_TRUE(gateway->Put("pia", "s.bin", Bytes(8 * 1024, 0x5A)).ok());

  // Burn past the shed threshold (6 of 10 tokens) with foreground reads.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gateway->GetRange("pia", "s.bin", 0, 512).ok()) << i;
  }

  // A prefetch-tagged read sheds with the typed reason - before consuming
  // a token, so the foreground read right after it still gets one.
  Result<GetResult> prefetch =
      gateway->GetRange("pia", "s.bin", 512, 512, /*prefetch=*/true);
  ASSERT_FALSE(prefetch.ok());
  EXPECT_EQ(RejectReasonOf(prefetch.status()), RejectReason::kPrefetchShed);

  Result<GetResult> foreground = gateway->GetRange("pia", "s.bin", 512, 512);
  EXPECT_TRUE(foreground.ok()) << foreground.status();

  // Under a refilled bucket the same prefetch op is admitted again.
  gateway->set_time(10.0);
  Result<GetResult> later =
      gateway->GetRange("pia", "s.bin", 1024, 512, /*prefetch=*/true);
  EXPECT_TRUE(later.ok()) << later.status();
}

// --- REST frontend -------------------------------------------------------

TEST(GatewayRestTest, UploadDownloadDeleteListRoundTrip) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  ASSERT_TRUE(gateway->RegisterTenant("lara").ok());
  GatewayRestFrontend frontend(gateway.get(), &metrics);

  HttpRequest upload;
  upload.method = HttpMethod::kPost;
  upload.path = "/gateway/lara/files/upload";
  upload.query["name"] = "a.txt";
  upload.body = ToBytes("rest payload");
  EXPECT_EQ(frontend.Handle(upload).status, 200);

  HttpRequest download;
  download.path = "/gateway/lara/files/download";
  download.query["name"] = "a.txt";
  HttpResponse got = frontend.Handle(download);
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(ToString(got.body), "rest payload");

  HttpRequest list;
  list.path = "/gateway/lara/files/list";
  HttpResponse listed = frontend.Handle(list);
  EXPECT_EQ(listed.status, 200);
  auto parsed = JsonValue::Parse(ToString(listed.body));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()["entries"].AsArray().size(), 1u);

  HttpRequest del;
  del.method = HttpMethod::kPost;
  del.path = "/gateway/lara/files/delete";
  del.query["name"] = "a.txt";
  EXPECT_EQ(frontend.Handle(del).status, 200);

  HttpResponse gone = frontend.Handle(download);
  EXPECT_EQ(gone.status, 404);
}

TEST(GatewayRestTest, TypedRejectsMapToTransportCodes) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  auto gateway = MakeGateway(options, 1);
  TenantQuotas quotas;
  quotas.ops_per_sec = 1.0;
  quotas.ops_burst = 1.0;
  quotas.stored_bytes_limit = 100;
  ASSERT_TRUE(gateway->RegisterTenant("mina", quotas).ok());
  GatewayRestFrontend frontend(gateway.get(), &metrics);

  // Unknown tenant -> 403.
  HttpRequest ghost;
  ghost.path = "/gateway/ghost/files/download";
  ghost.query["name"] = "x";
  EXPECT_EQ(frontend.Handle(ghost).status, 403);

  // Storage quota -> 507, with the machine-readable reason in the body.
  HttpRequest upload;
  upload.method = HttpMethod::kPost;
  upload.path = "/gateway/mina/files/upload";
  upload.query["name"] = "big.bin";
  upload.body = Bytes(500, 0x42);
  HttpResponse quota = frontend.Handle(upload);
  EXPECT_EQ(quota.status, 507);
  auto body = JsonValue::Parse(ToString(quota.body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value()["error"].AsString(), "storage-quota");

  // Rate limit (bucket already drained by the quota attempt) -> 429.
  HttpRequest read;
  read.path = "/gateway/mina/files/download";
  read.query["name"] = "x";
  EXPECT_EQ(frontend.Handle(read).status, 429);
}

TEST(GatewayRestTest, RangeHeaderGets206WithContentRange) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  ASSERT_TRUE(gateway->RegisterTenant("ola").ok());
  GatewayRestFrontend frontend(gateway.get(), &metrics);

  Bytes content(4096);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i);
  }
  HttpRequest upload;
  upload.method = HttpMethod::kPost;
  upload.path = "/gateway/ola/files/upload";
  upload.query["name"] = "clip.bin";
  upload.body = content;
  ASSERT_EQ(frontend.Handle(upload).status, 200);

  HttpRequest download;
  download.path = "/gateway/ola/files/download";
  download.query["name"] = "clip.bin";

  // Closed range: inclusive bounds, 206, Content-Range with the full size.
  download.headers["range"] = "bytes=100-355";
  HttpResponse part = frontend.Handle(download);
  EXPECT_EQ(part.status, 206);
  EXPECT_EQ(part.body, Bytes(content.begin() + 100, content.begin() + 356));
  EXPECT_EQ(part.headers["content-range"], "bytes 100-355/4096");

  // Open-ended range: to the end of the file.
  download.headers["range"] = "bytes=4000-";
  HttpResponse tail = frontend.Handle(download);
  EXPECT_EQ(tail.status, 206);
  EXPECT_EQ(tail.body, Bytes(content.begin() + 4000, content.end()));
  EXPECT_EQ(tail.headers["content-range"], "bytes 4000-4095/4096");

  // End clamped to the file size.
  download.headers["range"] = "bytes=4090-999999";
  HttpResponse clamped = frontend.Handle(download);
  EXPECT_EQ(clamped.status, 206);
  EXPECT_EQ(clamped.headers["content-range"], "bytes 4090-4095/4096");

  // Unsupported forms are ignored per RFC 7233: full 200 response.
  for (const char* ignored : {"bytes=-500", "bytes=5-2", "items=0-4", "junk"}) {
    download.headers["range"] = ignored;
    HttpResponse full = frontend.Handle(download);
    EXPECT_EQ(full.status, 200) << ignored;
    EXPECT_EQ(full.body, content) << ignored;
    EXPECT_EQ(full.headers["accept-ranges"], "bytes") << ignored;
  }

  // A start past the end is 416 Range Not Satisfiable.
  download.headers["range"] = "bytes=5000-6000";
  EXPECT_EQ(frontend.Handle(download).status, 416);
}

TEST(GatewayRestTest, PrefetchTaggedRangeShedsWith429) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.prefetch_shed_burn = 0.5;
  auto gateway = MakeGateway(options, 1);
  TenantQuotas quotas;
  quotas.ops_per_sec = 10.0;
  quotas.ops_burst = 10.0;
  ASSERT_TRUE(gateway->RegisterTenant("rui", quotas).ok());
  ASSERT_TRUE(gateway->Put("rui", "v.bin", Bytes(2048, 0x7C)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gateway->GetRange("rui", "v.bin", 0, 128).ok()) << i;
  }
  GatewayRestFrontend frontend(gateway.get(), &metrics);

  HttpRequest prefetch;
  prefetch.path = "/gateway/rui/files/download";
  prefetch.query["name"] = "v.bin";
  prefetch.headers["range"] = "bytes=128-255";
  prefetch.headers["x-cyrus-prefetch"] = "1";
  HttpResponse shed = frontend.Handle(prefetch);
  EXPECT_EQ(shed.status, 429);
  auto body = JsonValue::Parse(ToString(shed.body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value()["error"].AsString(), "prefetch-shed");

  // The same request untagged is foreground and admitted.
  prefetch.headers.erase("x-cyrus-prefetch");
  EXPECT_EQ(frontend.Handle(prefetch).status, 206);
}

TEST(GatewayRestTest, UnknownRoutesAre404) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 1);
  GatewayRestFrontend frontend(gateway.get(), &metrics);
  HttpRequest request;
  request.path = "/gateway/unknown";
  EXPECT_EQ(frontend.Handle(request).status, 404);
  request.path = "/gateway/t1/files/rename";
  EXPECT_EQ(frontend.Handle(request).status, 404);
  request.path = "/elsewhere";
  EXPECT_EQ(frontend.Handle(request).status, 404);
}

TEST(GatewayRestTest, StatsEndpointReportsShedding) {
  obs::MetricsRegistry metrics;
  auto gateway = MakeGateway(QuietOptions(&metrics), 2);
  TenantQuotas quotas;
  quotas.ops_per_sec = 2.0;
  quotas.ops_burst = 2.0;
  ASSERT_TRUE(gateway->RegisterTenant("nina", quotas).ok());
  for (int i = 0; i < 6; ++i) {
    (void)gateway->Put("nina", "f.txt", ToBytes("x"));
  }
  GatewayRestFrontend frontend(gateway.get(), &metrics);
  HttpRequest stats;
  stats.path = "/gateway/stats";
  HttpResponse response = frontend.Handle(stats);
  EXPECT_EQ(response.status, 200);
  auto body = JsonValue::Parse(ToString(response.body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value()["num_shards"].AsNumber(), 2.0);
  EXPECT_EQ(body.value()["rejects_by_reason"]["rate-limited"].AsNumber(), 4.0);
}

// --- concurrency (TSan surface) ------------------------------------------

TEST(GatewayConcurrencyTest, ParallelTenantsSeeOnlyOkOrTypedRejects) {
  obs::MetricsRegistry metrics;
  GatewayOptions options = QuietOptions(&metrics);
  options.max_tenant_window = 4;
  auto gateway = MakeGateway(options, 2);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 25;
  for (int t = 0; t < kThreads; ++t) {
    TenantQuotas quotas;
    quotas.ops_per_sec = 40.0;  // tight enough that some threads shed
    ASSERT_TRUE(gateway->RegisterTenant(StrCat("tenant-", t), quotas).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = StrCat("tenant-", t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path = StrCat("file-", i % 5);
        Result<PutResult> put =
            gateway->Put(tenant, path, ToBytes(StrCat("v", i)));
        if (!put.ok() && !IsGatewayReject(put.status())) {
          ++failures;
        }
        Result<GetResult> get = gateway->Get(tenant, path);
        if (!get.ok() && !IsGatewayReject(get.status()) &&
            get.status().code() != StatusCode::kNotFound) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const GatewayStats stats = gateway->Stats();
  EXPECT_EQ(stats.ops_total,
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
}

}  // namespace
}  // namespace cyrus
