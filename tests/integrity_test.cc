// End-to-end share integrity battery (ctest label `integrity`;
// scripts/check.sh --integrity, also run under TSan in the tsan tier).
//
// Covers the per-share authentication path end to end:
//   - Put records a digest for every placed share (chunk table + metadata);
//   - a CSP corrupting 100% of its downloads is isolated share-by-share:
//     Get still returns intact content from the clean providers and the
//     poisoned shares surface as typed integrity rejections, never as
//     plaintext corruption;
//   - integrity failures weigh heavier than timeouts in the circuit
//     breaker, and without breakers a repeat offender is quarantined;
//   - legacy (pre-digest) metadata takes the combinatorial decode once,
//     identifies the rotted share, heals it in place, and upgrades the
//     record so every later read authenticates cheaply;
//   - the scrub integrity pass finds injected at-rest rot within its
//     sample/bandwidth budget, heals it, and a follow-up pass scans clean;
//   - the REST layer maps integrity/data-loss failures to 502, not 500;
//   - the fault injector's corruption schedule is seeded-reproducible.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/crypto/naming.h"
#include "src/gateway/gateway_rest.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

Bytes RandomContent(Rng& rng, size_t size) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

struct Cloud {
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

CyrusConfig BaseConfig(uint64_t seed) {
  CyrusConfig config;
  config.client_id = "integrity-device";
  config.key_string = StrCat("integrity key ", seed);
  config.t = 2;
  config.chunker = ChunkerOptions::ForTesting();
  config.transfer_concurrency = 4;
  config.transfer_retry.seed = seed;
  config.transfer_retry.max_attempts = 2;
  // Pin n = |active|: every chunk keeps a share on every CSP, so the
  // corrupting provider is guaranteed to sit in each gather's plan.
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;
  return config;
}

Cloud MakeCloud(CyrusConfig config, int num_csps, uint64_t seed,
                const std::function<void(int, FaultInjectionOptions&)>& tweak = {}) {
  Cloud cloud;
  cloud.metrics = std::make_unique<obs::MetricsRegistry>();
  if (config.metrics == nullptr) {
    config.metrics = cloud.metrics.get();
  }
  obs::MetricsRegistry* metrics = config.metrics;
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (int i = 0; i < num_csps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("int-csp", i);
    FaultInjectionOptions faults;
    faults.seed = seed * 17 + static_cast<uint64_t>(i);
    faults.metrics = metrics;
    if (tweak) {
      tweak(i, faults);
    }
    auto injector = std::make_shared<FaultInjectingConnector>(
        std::make_shared<SimulatedCsp>(o), faults);
    cloud.faults.push_back(injector);
    CspProfile profile;
    profile.rtt_ms = 40.0;
    // CSP 0 looks fastest so the download selector always favours it -
    // the corruption tests put the liar exactly there.
    profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
    profile.upload_bytes_per_sec = 5e6;
    auto added = cloud.client->AddCsp(injector, profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

// Flips one stored byte of every share the chunk table places on `csp`.
// Returns how many objects were rotted.
size_t RotCspShares(const CyrusClient& client, FaultInjectingConnector& fault,
                    int csp) {
  size_t rotted = 0;
  const ChunkTable& table = client.chunk_table();
  for (const Sha1Digest& chunk_id : table.AllChunkIds()) {
    const ChunkEntry* entry = table.Find(chunk_id);
    if (entry == nullptr) {
      continue;
    }
    for (const ChunkShare& share : entry->shares) {
      if (share.csp != csp) {
        continue;
      }
      if (fault.RotStoredObject(ShareName(chunk_id, share.share_index, entry->t),
                                /*byte_index=*/7)
              .ok()) {
        ++rotted;
      }
    }
  }
  return rotted;
}

// Put records one digest per placed share, in the chunk table and in the
// published metadata, and a clean Get authenticates without rejections.
TEST(ShareIntegrityTest, PutRecordsDigestsAndCleanGetAuthenticates) {
  const uint64_t seed = 0x17E60001;
  Rng rng(seed);
  Cloud cloud = MakeCloud(BaseConfig(seed), /*num_csps=*/4, seed);

  const Bytes content = RandomContent(rng, 6 * 1024);
  auto put = cloud.client->Put("clean-file", content);
  ASSERT_TRUE(put.ok()) << put.status();

  const ChunkTable& table = cloud.client->chunk_table();
  ASSERT_FALSE(table.AllChunkIds().empty());
  for (const Sha1Digest& chunk_id : table.AllChunkIds()) {
    const ChunkEntry* entry = table.Find(chunk_id);
    ASSERT_NE(entry, nullptr);
    for (const ChunkShare& share : entry->shares) {
      EXPECT_TRUE(share.has_digest())
          << chunk_id.ToHex() << " index " << share.share_index;
    }
  }

  auto get = cloud.client->Get("clean-file");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_EQ(get->integrity_rejected_shares, 0u);
  EXPECT_EQ(get->digest_upgraded_chunks, 0u);
}

// Tentpole bar: one of five CSPs corrupts 100% of its downloads. Every Get
// must return intact plaintext (availability 1.0 at the content level) with
// the poisoned shares rejected *before* decode, and the per-CSP integrity
// counter must name the liar.
TEST(ShareIntegrityTest, FullyCorruptingCspIsIsolated) {
  const uint64_t seed = 0x17E60002;
  Rng rng(seed);
  Cloud cloud = MakeCloud(BaseConfig(seed), /*num_csps=*/5, seed,
                          [](int i, FaultInjectionOptions& f) {
                            if (i == 0) {
                              f.download_corrupt_prob = 1.0;
                            }
                          });

  const Bytes content = RandomContent(rng, 8 * 1024);
  auto put = cloud.client->Put("poisoned-csp", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto get = cloud.client->Get("poisoned-csp");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_GT(get->integrity_rejected_shares, 0u);

  obs::MetricsRegistry* metrics = cloud.metrics.get();
  EXPECT_GT(
      metrics->GetCounter("cyrus_integrity_rejected_shares_total", {}, "")->value(),
      0u);
  EXPECT_GT(metrics
                ->GetCounter("cyrus_integrity_failures_total",
                             {{"csp", "int-csp0"}}, "")
                ->value(),
            0u);
  // The corruption never reached the decoder as trusted input: the share
  // was discarded and replaced by a clean provider's copy.
  EXPECT_GT(cloud.faults[0]->counters().downloads_corrupted, 0u);
}

// Integrity failures weigh integrity_failure_weight x into the breaker: a
// single multi-chunk Get against a lying CSP trips a breaker sized to
// absorb that many plain timeouts.
TEST(ShareIntegrityTest, BreakerWeightsIntegrityFailuresHeavier) {
  const uint64_t seed = 0x17E60003;
  CyrusConfig config = BaseConfig(seed);
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 6;  // 6 timeouts, but only 2 lies
  config.integrity_failure_weight = 3;
  Rng rng(seed);
  Cloud cloud = MakeCloud(std::move(config), /*num_csps=*/5, seed,
                          [](int i, FaultInjectionOptions& f) {
                            if (i == 0) {
                              f.download_corrupt_prob = 1.0;
                            }
                          });

  const Bytes content = RandomContent(rng, 8 * 1024);  // several chunks
  auto put = cloud.client->Put("weighted", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto get = cloud.client->Get("weighted");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  ASSERT_GE(get->integrity_rejected_shares, 2u);

  auto breaker = cloud.client->breaker_for(0);
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
}

// Without breakers, a CSP crossing integrity_quarantine_threshold is marked
// failed outright - out of placement and selection until re-verified.
TEST(ShareIntegrityTest, RepeatOffenderQuarantinedWithoutBreakers) {
  const uint64_t seed = 0x17E60004;
  CyrusConfig config = BaseConfig(seed);
  config.integrity_quarantine_threshold = 3;
  Rng rng(seed);
  Cloud cloud = MakeCloud(std::move(config), /*num_csps=*/5, seed,
                          [](int i, FaultInjectionOptions& f) {
                            if (i == 0) {
                              f.download_corrupt_prob = 1.0;
                            }
                          });

  const Bytes content = RandomContent(rng, 8 * 1024);
  auto put = cloud.client->Put("quarantine", content);
  ASSERT_TRUE(put.ok()) << put.status();

  auto get = cloud.client->Get("quarantine");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  ASSERT_GE(get->integrity_rejected_shares, 3u);

  auto state = cloud.client->registry().state(0);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(*state, CspState::kFailed);
  EXPECT_GE(cloud.client->availability_monitor().IntegrityFailureCount(0), 3u);
}

// Legacy (pre-digest) metadata with one rotted share: the gather falls back
// to the combinatorial decode, identifies and heals the corrupt share, and
// upgrades the record in place so the next reader authenticates normally.
TEST(ShareIntegrityTest, LegacyMetadataCombinatorialUpgrade) {
  const uint64_t seed = 0x17E60005;
  Rng rng(seed);

  auto make_config = [&](bool verify) {
    CyrusConfig config = BaseConfig(seed);
    config.verify_share_digests = verify;
    return config;
  };
  // The legacy writer: records no digests, exactly the pre-digest client.
  Cloud cloud = MakeCloud(make_config(false), /*num_csps=*/5, seed);
  const Bytes content = RandomContent(rng, 3 * 1024);
  auto put = cloud.client->Put("legacy-file", content);
  ASSERT_TRUE(put.ok()) << put.status();
  for (const Sha1Digest& chunk_id : cloud.client->chunk_table().AllChunkIds()) {
    const ChunkEntry* entry = cloud.client->chunk_table().Find(chunk_id);
    ASSERT_NE(entry, nullptr);
    for (const ChunkShare& share : entry->shares) {
      EXPECT_FALSE(share.has_digest());
    }
  }

  // Bit rot at the provider while the file sits cold.
  ASSERT_GT(RotCspShares(*cloud.client, *cloud.faults[0], /*csp=*/0), 0u);

  // A modern reader over the same accounts: no digests to check, so the
  // decode integrity path runs the exhaustive t-subset decode, names the
  // rotted share, heals it, and derives the full digest set.
  cloud.client.reset();
  auto reader = CyrusClient::Create(make_config(true));
  ASSERT_TRUE(reader.ok()) << reader.status();
  for (auto& fault : cloud.faults) {
    CspProfile profile;
    ASSERT_TRUE((*reader)->AddCsp(fault, profile, Credentials{"token"}).ok());
  }
  auto get = (*reader)->Get("legacy-file");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_GT(get->digest_upgraded_chunks, 0u);

  // The upgrade stuck: table digests present, and a fresh session reading
  // the republished metadata authenticates without any fallback.
  for (const Sha1Digest& chunk_id : (*reader)->chunk_table().AllChunkIds()) {
    const ChunkEntry* entry = (*reader)->chunk_table().Find(chunk_id);
    ASSERT_NE(entry, nullptr);
    for (const ChunkShare& share : entry->shares) {
      EXPECT_TRUE(share.has_digest());
    }
  }
  reader->reset();
  auto second = CyrusClient::Create(make_config(true));
  ASSERT_TRUE(second.ok()) << second.status();
  for (auto& fault : cloud.faults) {
    CspProfile profile;
    ASSERT_TRUE((*second)->AddCsp(fault, profile, Credentials{"token"}).ok());
  }
  auto get2 = (*second)->Get("legacy-file");
  ASSERT_TRUE(get2.ok()) << get2.status();
  EXPECT_EQ(get2->content, content);
  EXPECT_EQ(get2->digest_upgraded_chunks, 0u);
  EXPECT_EQ(get2->integrity_rejected_shares, 0u);
}

// Scrub integrity pass: injected at-rest rot is found by the sampled digest
// sweep, healed in place within the pass budget, and a follow-up pass scans
// completely clean.
TEST(ShareIntegrityTest, ScrubHealsAtRestRot) {
  const uint64_t seed = 0x17E60006;
  CyrusConfig config = BaseConfig(seed);
  config.repair.integrity_samples_per_pass = 64;  // covers the whole table
  Rng rng(seed);
  Cloud cloud = MakeCloud(std::move(config), /*num_csps=*/5, seed);

  const Bytes content = RandomContent(rng, 8 * 1024);
  auto put = cloud.client->Put("rotting", content);
  ASSERT_TRUE(put.ok()) << put.status();

  const size_t rotted = RotCspShares(*cloud.client, *cloud.faults[0], /*csp=*/0);
  ASSERT_GT(rotted, 0u);

  auto scrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->stats.shares_integrity_checked, 0u);
  EXPECT_EQ(scrub->stats.integrity_failures, rotted);
  EXPECT_EQ(scrub->stats.shares_healed, rotted);

  // The heal really landed on the providers: a second pass sees no rot.
  auto rescrub = cloud.client->ScrubOnce();
  ASSERT_TRUE(rescrub.ok()) << rescrub.status();
  EXPECT_GT(rescrub->stats.shares_integrity_checked, 0u);
  EXPECT_EQ(rescrub->stats.integrity_failures, 0u);
  EXPECT_EQ(rescrub->stats.shares_healed, 0u);

  auto get = cloud.client->Get("rotting");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_EQ(get->integrity_rejected_shares, 0u);
}

// The scrub's per-pass sample budget really bounds the sweep, and the
// persistent cursor still covers the whole table across passes.
TEST(ShareIntegrityTest, ScrubSampleBudgetRotatesAcrossPasses) {
  const uint64_t seed = 0x17E60007;
  CyrusConfig config = BaseConfig(seed);
  config.repair.integrity_samples_per_pass = 1;  // one chunk per pass
  Rng rng(seed);
  Cloud cloud = MakeCloud(std::move(config), /*num_csps=*/4, seed);

  const Bytes content = RandomContent(rng, 6 * 1024);
  auto put = cloud.client->Put("sampled", content);
  ASSERT_TRUE(put.ok()) << put.status();
  const size_t chunks = cloud.client->chunk_table().AllChunkIds().size();
  ASSERT_GT(chunks, 1u);

  const size_t rotted = RotCspShares(*cloud.client, *cloud.faults[0], /*csp=*/0);
  ASSERT_EQ(rotted, chunks);  // one share per chunk sits on csp 0

  // Each pass samples exactly one chunk; after `chunks` passes the rotating
  // cursor has swept the whole table and healed every rotted share.
  uint64_t healed = 0;
  for (size_t pass = 0; pass < chunks; ++pass) {
    auto scrub = cloud.client->ScrubOnce();
    ASSERT_TRUE(scrub.ok()) << scrub.status();
    EXPECT_LE(scrub->stats.shares_integrity_checked, 4u);  // one chunk's shares
    healed += scrub->stats.shares_healed;
  }
  EXPECT_EQ(healed, rotted);
}

// REST mapping: integrity and data-loss failures are upstream (502), typed
// by name in the body, and distinct from generic 500s.
TEST(ShareIntegrityTest, RestMapsIntegrityFailuresTo502) {
  EXPECT_EQ(HttpStatusForGatewayError(IntegrityError("rotten")), 502);
  EXPECT_EQ(HttpStatusForGatewayError(DataLossError("gone")), 502);
  EXPECT_EQ(HttpStatusForGatewayError(InternalError("bug")), 500);
  EXPECT_EQ(HttpStatusForGatewayError(UnavailableError("down")), 503);
  EXPECT_EQ(StatusCodeName(StatusCode::kIntegrity), "integrity");
}

// Seeded reproducibility: two injector stacks with identical seeds corrupt
// identically - same uploads corrupted, same stored bytes - and the at-rest
// rot hook is deterministic (flipping the same byte twice restores the
// original object).
TEST(ShareIntegrityTest, FaultScheduleIsSeededReproducible) {
  auto run = [](uint64_t seed) {
    obs::MetricsRegistry metrics;
    SimulatedCspOptions o;
    o.id = "repro-csp";
    FaultInjectionOptions faults;
    faults.seed = seed;
    faults.metrics = &metrics;
    faults.upload_corrupt_prob = 0.5;
    FaultInjectingConnector conn(std::make_shared<SimulatedCsp>(o), faults);
    EXPECT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
    std::vector<Bytes> stored;
    Rng data_rng(99);
    for (int i = 0; i < 16; ++i) {
      Bytes data = RandomContent(data_rng, 256);
      EXPECT_TRUE(conn.Upload(StrCat("obj-", i), data).ok());
      auto read = conn.Download(StrCat("obj-", i));
      EXPECT_TRUE(read.ok());
      stored.push_back(*std::move(read));
    }
    return std::make_pair(std::move(stored), conn.counters().uploads_corrupted);
  };
  auto [bytes_a, corrupted_a] = run(0xFEED);
  auto [bytes_b, corrupted_b] = run(0xFEED);
  auto [bytes_c, corrupted_c] = run(0xBEEF);
  EXPECT_GT(corrupted_a, 0u);
  EXPECT_EQ(corrupted_a, corrupted_b);
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_NE(bytes_a, bytes_c);  // a different seed corrupts differently

  // RotStoredObject is an involution at a fixed byte index.
  obs::MetricsRegistry metrics;
  SimulatedCspOptions o;
  o.id = "rot-csp";
  FaultInjectionOptions faults;
  faults.metrics = &metrics;
  FaultInjectingConnector conn(std::make_shared<SimulatedCsp>(o), faults);
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  Rng data_rng(7);
  const Bytes original = RandomContent(data_rng, 64);
  ASSERT_TRUE(conn.Upload("rotme", original).ok());
  ASSERT_TRUE(conn.RotStoredObject("rotme", 11).ok());
  auto rotted = conn.Download("rotme");
  ASSERT_TRUE(rotted.ok());
  EXPECT_NE(*rotted, original);
  ASSERT_TRUE(conn.RotStoredObject("rotme", 11).ok());
  auto restored = conn.Download("rotme");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, original);
  EXPECT_EQ(conn.counters().objects_rotted, 2u);
  EXPECT_TRUE(conn.RotStoredObject("missing", 0).code() == StatusCode::kNotFound);
}

}  // namespace
}  // namespace cyrus
