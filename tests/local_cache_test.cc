// Tests for the local metadata cache: snapshot round trip, key
// fingerprinting, crash-safe file I/O, and warm-start semantics (load +
// incremental sync instead of full recover).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/local_cache.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

namespace fs = std::filesystem;

CyrusConfig CacheConfig(std::string client_id) {
  CyrusConfig config;
  config.key_string = "cache test key";
  config.client_id = std::move(client_id);
  config.t = 2;
  config.epsilon = 1e-3;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  return config;
}

struct CacheCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

CacheCloud MakeCloud(std::string client_id,
                     std::vector<std::shared_ptr<SimulatedCsp>> csps = {},
                     bool reverse = false) {
  CacheCloud cloud;
  if (csps.empty()) {
    for (int i = 0; i < 4; ++i) {
      cloud.csps.push_back(
          std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)}));
    }
  } else {
    cloud.csps = std::move(csps);
  }
  cloud.client = std::move(CyrusClient::Create(CacheConfig(std::move(client_id)))).value();
  std::vector<std::shared_ptr<SimulatedCsp>> order = cloud.csps;
  if (reverse) {
    std::reverse(order.begin(), order.end());
  }
  for (auto& csp : order) {
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    EXPECT_TRUE(cloud.client->AddCsp(csp, profile, Credentials{"token"}).ok());
  }
  return cloud;
}

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(LocalCacheTest, EncodeDecodeRoundTrip) {
  CacheCloud cloud = MakeCloud("writer");
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(8 * 1024, 1)).ok());
  ASSERT_TRUE(cloud.client->Put("b.bin", RandomContent(4 * 1024, 2)).ok());

  const Sha1Digest fingerprint = Sha1::Hash(std::string_view("cache test key"));
  const LocalCacheSnapshot snapshot = cloud.client->ExportCache();
  auto back = DecodeLocalCache(EncodeLocalCache(snapshot, fingerprint), fingerprint);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->versions.size(), snapshot.versions.size());
  EXPECT_EQ(back->known_meta_bases, snapshot.known_meta_bases);
  EXPECT_EQ(back->chunk_table.size(), snapshot.chunk_table.size());
}

TEST(LocalCacheTest, WrongKeyFingerprintRejected) {
  CacheCloud cloud = MakeCloud("writer");
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(2048, 3)).ok());
  const Bytes data = EncodeLocalCache(cloud.client->ExportCache(),
                                      Sha1::Hash(std::string_view("cache test key")));
  auto wrong = DecodeLocalCache(data, Sha1::Hash(std::string_view("other key")));
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LocalCacheTest, DecodeRejectsGarbage) {
  const Sha1Digest fp = Sha1::Hash(std::string_view("k"));
  EXPECT_FALSE(DecodeLocalCache(Bytes{1, 2, 3}, fp).ok());
}

TEST(LocalCacheTest, WarmStartSkipsRefetch) {
  CacheCloud cloud = MakeCloud("writer");
  const Bytes content = RandomContent(16 * 1024, 4);
  ASSERT_TRUE(cloud.client->Put("warm.bin", content).ok());
  const LocalCacheSnapshot snapshot = cloud.client->ExportCache();

  // A restarted client imports the cache, then syncs incrementally; the
  // file is immediately known and readable.
  CacheCloud restarted = MakeCloud("writer", cloud.csps);
  ASSERT_TRUE(restarted.client->ImportCache(snapshot).ok());
  EXPECT_EQ(restarted.client->tree().size(), cloud.client->tree().size());
  auto sync = restarted.client->SyncMetadata();
  ASSERT_TRUE(sync.ok());
  // Nothing new to ingest: the sync performed no metadata share downloads.
  auto get = restarted.client->Get("warm.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  EXPECT_EQ(get->transfer.CountOf(TransferKind::kGetMeta), 0u);
}

TEST(LocalCacheTest, WarmStartSurvivesReorderedRegistration) {
  CacheCloud cloud = MakeCloud("writer");
  const Bytes content = RandomContent(12 * 1024, 5);
  ASSERT_TRUE(cloud.client->Put("portable.bin", content).ok());
  const LocalCacheSnapshot snapshot = cloud.client->ExportCache();

  CacheCloud restarted = MakeCloud("writer", cloud.csps, /*reverse=*/true);
  ASSERT_TRUE(restarted.client->ImportCache(snapshot).ok());
  auto get = restarted.client->Get("portable.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(LocalCacheTest, CachePlusIncrementalSyncSeesNewUploads) {
  CacheCloud cloud = MakeCloud("writer");
  ASSERT_TRUE(cloud.client->Put("old.bin", RandomContent(4096, 6)).ok());
  const LocalCacheSnapshot snapshot = cloud.client->ExportCache();
  // Another client uploads after the snapshot was taken.
  const Bytes fresh = RandomContent(4096, 7);
  ASSERT_TRUE(cloud.client->Put("new.bin", fresh).ok());

  CacheCloud restarted = MakeCloud("restarted", cloud.csps);
  ASSERT_TRUE(restarted.client->ImportCache(snapshot).ok());
  ASSERT_TRUE(restarted.client->SyncMetadata().ok());
  auto get = restarted.client->Get("new.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, fresh);
}

TEST(LocalCacheTest, FileSaveLoadRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "cyrus-cache-test.bin";
  fs::remove(path);
  CacheCloud cloud = MakeCloud("writer");
  ASSERT_TRUE(cloud.client->Put("f.bin", RandomContent(2048, 8)).ok());
  const Sha1Digest fp = Sha1::Hash(std::string_view("cache test key"));
  ASSERT_TRUE(SaveLocalCache(path, cloud.client->ExportCache(), fp).ok());
  auto loaded = LoadLocalCache(path, fp);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->versions.size(), 1u);
  fs::remove(path);
  EXPECT_EQ(LoadLocalCache(path, fp).status().code(), StatusCode::kNotFound);
}

// A snapshot file chopped mid-payload (crash during a copy, torn disk)
// must fail the load cleanly; the client then rebuilds with Recover() and
// still serves every file.
TEST(LocalCacheTest, TruncatedFileFailsLoadAndRecoverServes) {
  const fs::path path = fs::temp_directory_path() / "cyrus-cache-truncated.bin";
  CacheCloud cloud = MakeCloud("writer");
  const Bytes content = RandomContent(8 * 1024, 9);
  ASSERT_TRUE(cloud.client->Put("t.bin", content).ok());
  const Sha1Digest fp = Sha1::Hash(std::string_view("cache test key"));
  ASSERT_TRUE(SaveLocalCache(path, cloud.client->ExportCache(), fp).ok());

  fs::resize_file(path, fs::file_size(path) / 2);
  auto loaded = LoadLocalCache(path, fp);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << loaded.status();

  CacheCloud restarted = MakeCloud("writer", cloud.csps);
  ASSERT_TRUE(restarted.client->Recover().ok());
  auto get = restarted.client->Get("t.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  fs::remove(path);
}

// A single flipped byte anywhere in the payload must trip the trailing
// checksum - length-prefixed parsing alone can miss bit rot inside a
// serialized blob - and Recover() again restores service.
TEST(LocalCacheTest, CorruptedFileFailsLoadAndRecoverServes) {
  const fs::path path = fs::temp_directory_path() / "cyrus-cache-corrupt.bin";
  CacheCloud cloud = MakeCloud("writer");
  const Bytes content = RandomContent(6 * 1024, 10);
  ASSERT_TRUE(cloud.client->Put("c.bin", content).ok());
  const Sha1Digest fp = Sha1::Hash(std::string_view("cache test key"));
  const Bytes encoded = EncodeLocalCache(cloud.client->ExportCache(), fp);
  ASSERT_TRUE(SaveLocalCache(path, cloud.client->ExportCache(), fp).ok());

  // Flip one byte in the middle of the payload, past every header field.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(static_cast<std::streamoff>(encoded.size() / 2));
    const char flipped = static_cast<char>(encoded[encoded.size() / 2] ^ 0xFF);
    file.write(&flipped, 1);
  }
  auto loaded = LoadLocalCache(path, fp);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << loaded.status();

  CacheCloud restarted = MakeCloud("writer", cloud.csps);
  ASSERT_TRUE(restarted.client->Recover().ok());
  auto get = restarted.client->Get("c.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
  fs::remove(path);
}

}  // namespace
}  // namespace cyrus
