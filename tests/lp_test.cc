#include <gtest/gtest.h>

#include "src/opt/lp.h"
#include "src/opt/milp.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

constexpr double kTol = 1e-6;

TEST(LpTest, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  min -(x + y).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1.0, -1.0};
  p.AddLessEqual({1.0, 2.0}, 4.0);
  p.AddLessEqual({3.0, 1.0}, 6.0);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  // Optimum at intersection: x = 1.6, y = 1.2, value -2.8.
  EXPECT_NEAR(s->x[0], 1.6, kTol);
  EXPECT_NEAR(s->x[1], 1.2, kTol);
  EXPECT_NEAR(s->objective, -2.8, kTol);
}

TEST(LpTest, EqualityConstraint) {
  // min x + y s.t. x + y = 3, x <= 2 -> objective 3 everywhere feasible.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.AddEqual({1.0, 1.0}, 3.0);
  p.AddUpperBound(0, 2.0);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, 3.0, kTol);
  EXPECT_NEAR(s->x[0] + s->x[1], 3.0, kTol);
  EXPECT_LE(s->x[0], 2.0 + kTol);
}

TEST(LpTest, GreaterEqualConstraint) {
  // min 2x + 3y s.t. x + y >= 4, x >= 0, y >= 0 -> x = 4, y = 0.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {2.0, 3.0};
  p.AddGreaterEqual({1.0, 1.0}, 4.0);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, 8.0, kTol);
  EXPECT_NEAR(s->x[0], 4.0, kTol);
}

TEST(LpTest, DetectsInfeasible) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.AddLessEqual({1.0}, 1.0);
  p.AddGreaterEqual({1.0}, 2.0);
  auto s = SolveLp(p);
  EXPECT_EQ(s.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LpTest, DetectsUnbounded) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};  // min -x with only x >= 0: unbounded
  p.AddGreaterEqual({1.0}, 0.0);
  auto s = SolveLp(p);
  EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
}

TEST(LpTest, NegativeRhsNormalization) {
  // x - y <= -1 with min x: forces y >= x + 1; optimum x = 0.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 0.0};
  p.AddLessEqual({1.0, -1.0}, -1.0);
  p.AddUpperBound(1, 5.0);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->x[0], 0.0, kTol);
  EXPECT_GE(s->x[1], 1.0 - kTol);
}

TEST(LpTest, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-0.75, 150.0, -0.02};
  p.AddLessEqual({0.25, -60.0, -0.04}, 0.0);
  p.AddLessEqual({0.5, -90.0, -0.02}, 0.0);
  p.AddUpperBound(2, 1.0);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());  // Bland's rule must avoid cycling
}

TEST(LpTest, RejectsDimensionMismatch) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0};  // wrong size
  auto s = SolveLp(p);
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(LpTest, ZeroVariablesProblem) {
  LpProblem p;
  p.num_vars = 0;
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->objective, 0.0);
}

TEST(LpTest, MinMaxSchedulingShape) {
  // The selector's LP shape: min y s.t. load_c <= y * beta_c.
  // Two CSPs with bandwidth 10 and 5; jobs of size 30 split freely.
  // Optimal: put 20 on the fast CSP, 10 on the slow -> y = 2.
  LpProblem p;
  p.num_vars = 3;  // y, d0, d1 (fraction of the 30 units on each CSP)
  p.objective = {1.0, 0.0, 0.0};
  p.AddLessEqual({-10.0, 30.0, 0.0}, 0.0);  // 30 d0 <= 10 y
  p.AddLessEqual({-5.0, 0.0, 30.0}, 0.0);   // 30 d1 <= 5 y
  p.AddEqual({0.0, 1.0, 1.0}, 1.0);         // all units placed
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, 2.0, kTol);
  EXPECT_NEAR(s->x[1], 2.0 / 3.0, kTol);
}

// --- MILP ---

TEST(MilpTest, KnapsackStyleBinaryChoice) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 4, binaries -> a=1, c=1, value 8.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {-5.0, -4.0, -3.0};
  p.AddLessEqual({2.0, 3.0, 1.0}, 4.0);
  auto s = SolveBinaryMilp(p, {0, 1, 2});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, -8.0, kTol);
  EXPECT_NEAR(s->x[0], 1.0, kTol);
  EXPECT_NEAR(s->x[1], 0.0, kTol);
  EXPECT_NEAR(s->x[2], 1.0, kTol);
}

TEST(MilpTest, FractionalLpIntegerGap) {
  // LP relaxation would take half of item b; MILP must not.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-10.0, -6.0};
  p.AddLessEqual({5.0, 4.0}, 7.0);
  auto s = SolveBinaryMilp(p, {0, 1});
  ASSERT_TRUE(s.ok());
  // Either a alone (-10) or b alone (-6); optimum -10.
  EXPECT_NEAR(s->objective, -10.0, kTol);
}

TEST(MilpTest, InfeasibleIntegerProblem) {
  // a + b = 1.5 has fractional solutions only.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.AddEqual({1.0, 1.0}, 1.5);
  auto s = SolveBinaryMilp(p, {0, 1});
  EXPECT_EQ(s.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MilpTest, MixedContinuousAndBinary) {
  // min y s.t. y >= 3a, y >= 2(1-a), a binary: a=0 -> y=2; a=1 -> y=3.
  LpProblem p;
  p.num_vars = 2;  // y, a
  p.objective = {1.0, 0.0};
  p.AddGreaterEqual({1.0, -3.0}, 0.0);  // y - 3a >= 0
  p.AddGreaterEqual({1.0, 2.0}, 2.0);   // y + 2a >= 2
  auto s = SolveBinaryMilp(p, {1});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, 2.0, kTol);
  EXPECT_NEAR(s->x[1], 0.0, kTol);
}

TEST(MilpTest, ChooseExactlyTFromC) {
  // The download-selector pattern: pick exactly 2 of 4 binaries minimizing
  // a weighted sum.
  LpProblem p;
  p.num_vars = 4;
  p.objective = {5.0, 1.0, 3.0, 2.0};
  p.AddEqual({1.0, 1.0, 1.0, 1.0}, 2.0);
  auto s = SolveBinaryMilp(p, {0, 1, 2, 3});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->objective, 3.0, kTol);  // vars 1 and 3
  EXPECT_NEAR(s->x[1], 1.0, kTol);
  EXPECT_NEAR(s->x[3], 1.0, kTol);
}

TEST(MilpTest, RejectsBadBinaryIndex) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  auto s = SolveBinaryMilp(p, {5});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(LpTest, RandomizedSolutionsSatisfyConstraints) {
  // Property: on random feasible LPs, the returned point satisfies every
  // constraint (within tolerance) and is nonnegative.
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    LpProblem p;
    p.num_vars = 3 + rng.NextBelow(4);
    p.objective.resize(p.num_vars);
    for (double& c : p.objective) {
      c = rng.NextDouble(-2.0, 2.0);
    }
    // Box constraints guarantee boundedness; random <= rows shape it.
    for (size_t v = 0; v < p.num_vars; ++v) {
      p.AddUpperBound(v, rng.NextDouble(1.0, 10.0));
    }
    const size_t rows = 1 + rng.NextBelow(4);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<double> coeffs(p.num_vars);
      for (double& a : coeffs) {
        a = rng.NextDouble(0.0, 3.0);
      }
      p.AddLessEqual(std::move(coeffs), rng.NextDouble(2.0, 20.0));
    }
    auto s = SolveLp(p);
    ASSERT_TRUE(s.ok()) << "trial " << trial;  // origin is always feasible
    for (size_t v = 0; v < p.num_vars; ++v) {
      EXPECT_GE(s->x[v], -1e-7) << "trial " << trial;
    }
    for (const LpConstraint& c : p.constraints) {
      double lhs = 0.0;
      for (size_t v = 0; v < p.num_vars; ++v) {
        lhs += c.coeffs[v] * s->x[v];
      }
      EXPECT_LE(lhs, c.rhs + 1e-6) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace cyrus
