#include <gtest/gtest.h>

#include <numeric>

#include "src/rs/galois.h"
#include "src/rs/matrix.h"

namespace cyrus {
namespace {

TEST(GfMatrixTest, IdentityProperties) {
  const GfMatrix id = GfMatrix::Identity(4);
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_EQ(id.rows(), 4u);
  EXPECT_EQ(id.cols(), 4u);
}

TEST(GfMatrixTest, MultiplyByIdentity) {
  GfMatrix m(3, 3);
  uint8_t v = 1;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      m.Set(i, j, v++);
    }
  }
  EXPECT_EQ(m.Multiply(GfMatrix::Identity(3)), m);
  EXPECT_EQ(GfMatrix::Identity(3).Multiply(m), m);
}

TEST(GfMatrixTest, VandermondeEntries) {
  const GfMatrix v = GfMatrix::Vandermonde({1, 2, 3}, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(v.At(i, 0), 1);  // x^0
  }
  EXPECT_EQ(v.At(1, 1), 2);
  EXPECT_EQ(v.At(1, 2), 4);
  EXPECT_EQ(v.At(2, 1), 3);
  EXPECT_EQ(v.At(2, 2), Galois::Mul(3, 3));
}

TEST(GfMatrixTest, VandermondeWithDistinctPointsIsInvertible) {
  const GfMatrix v = GfMatrix::Vandermonde({5, 9, 17, 33, 86}, 5);
  auto inv = v.Inverted();
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(v.Multiply(*inv).IsIdentity());
  EXPECT_TRUE(inv->Multiply(v).IsIdentity());
}

TEST(GfMatrixTest, EveryTRowSubsetOfTallVandermondeInvertible) {
  // The secret-sharing guarantee: any t of n rows decode.
  const std::vector<uint8_t> points = {1, 2, 3, 4, 5, 6};
  const GfMatrix v = GfMatrix::Vandermonde(points, 3);
  for (size_t a = 0; a < 6; ++a) {
    for (size_t b = a + 1; b < 6; ++b) {
      for (size_t c = b + 1; c < 6; ++c) {
        auto inv = v.SelectRows({a, b, c}).Inverted();
        EXPECT_TRUE(inv.ok()) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(GfMatrixTest, SingularMatrixRejected) {
  GfMatrix m(2, 2);
  m.Set(0, 0, 3);
  m.Set(0, 1, 5);
  m.Set(1, 0, 3);
  m.Set(1, 1, 5);  // duplicate row
  EXPECT_FALSE(m.Inverted().ok());
}

TEST(GfMatrixTest, NonSquareInvertRejected) {
  EXPECT_FALSE(GfMatrix(2, 3).Inverted().ok());
}

TEST(GfMatrixTest, ZeroMatrixSingular) {
  EXPECT_FALSE(GfMatrix(3, 3).Inverted().ok());
}

TEST(GfMatrixTest, SelectRowsPreservesOrder) {
  GfMatrix m(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    m.Set(i, 0, static_cast<uint8_t>(i + 1));
  }
  const GfMatrix sel = m.SelectRows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.At(0, 0), 3);
  EXPECT_EQ(sel.At(1, 0), 1);
}

TEST(GfMatrixTest, ScaleColumnPreservesInvertibility) {
  GfMatrix v = GfMatrix::Vandermonde({7, 11, 13}, 3);
  v.ScaleColumn(0, 0x55);
  v.ScaleColumn(1, 0xAA);
  v.ScaleColumn(2, 0x03);
  auto inv = v.Inverted();
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(v.Multiply(*inv).IsIdentity());
}

TEST(GfMatrixTest, InverseRoundTripRandomized) {
  // Random invertible matrices: start from identity and apply row ops.
  uint32_t seed = 12345;
  auto next = [&seed]() {
    seed = seed * 1664525u + 1013904223u;
    return static_cast<uint8_t>(seed >> 24);
  };
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 4;
    GfMatrix m = GfMatrix::Identity(n);
    for (int op = 0; op < 30; ++op) {
      const size_t r1 = next() % n;
      const size_t r2 = (r1 + 1 + next() % (n - 1)) % n;
      uint8_t factor = next();
      if (factor == 0) {
        factor = 1;
      }
      for (size_t j = 0; j < n; ++j) {
        m.Set(r1, j, Galois::Add(m.At(r1, j), Galois::Mul(factor, m.At(r2, j))));
      }
    }
    auto inv = m.Inverted();
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(m.Multiply(*inv).IsIdentity());
  }
}

TEST(GfMatrixTest, MultiplyDimensions) {
  GfMatrix a(2, 3);
  GfMatrix b(3, 4);
  const GfMatrix c = a.Multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(GfMatrixTest, ToStringFormat) {
  GfMatrix m(1, 2);
  m.Set(0, 0, 10);
  m.Set(0, 1, 20);
  EXPECT_EQ(m.ToString(), "10 20\n");
}

}  // namespace
}  // namespace cyrus
