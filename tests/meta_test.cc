#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/gateway/shard_map.h"
#include "src/meta/chunk_table.h"
#include "src/meta/metadata.h"
#include "src/meta/serialize.h"
#include "src/meta/version_tree.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

Sha1Digest Id(std::string_view tag) { return Sha1::Hash(tag); }

FileVersion MakeVersion(std::string_view name, std::string_view content_tag,
                        const Sha1Digest& prev = Sha1Digest{}) {
  FileVersion v;
  v.id = Id(content_tag);
  v.prev_id = prev;
  v.client_id = "tester";
  v.file_name = std::string(name);
  v.modified_time = 1.0;
  v.size = 100;
  ChunkRecord chunk;
  chunk.id = Id(std::string(content_tag) + "-chunk");
  chunk.offset = 0;
  chunk.size = 100;
  chunk.t = 2;
  chunk.n = 3;
  v.chunks.push_back(chunk);
  for (uint32_t i = 0; i < 3; ++i) {
    v.shares.push_back(ShareLocation{chunk.id, i, static_cast<int32_t>(i)});
  }
  return v;
}

// Serializes `v` in a legacy envelope format (1 = pre-dedup, 2 = dedup but
// pre-digest), byte-identical to what those clients wrote, so the decoder's
// backward-compatibility paths are pinned against the historical layouts.
Bytes SerializeAtVersion(const FileVersion& v, uint32_t format_version) {
  BinaryWriter w;
  w.WriteU32(0x43595253);  // "CYRS"
  w.WriteU32(format_version);
  w.WriteDigest(v.id);
  w.WriteDigest(v.content_id);
  w.WriteDigest(v.prev_id);
  w.WriteString(v.client_id);
  w.WriteString(v.file_name);
  w.WriteU8(v.deleted ? 1 : 0);
  w.WriteDouble(v.modified_time);
  w.WriteU64(v.size);
  w.WriteU32(static_cast<uint32_t>(v.chunks.size()));
  for (const ChunkRecord& c : v.chunks) {
    w.WriteDigest(c.id);
    w.WriteU64(c.offset);
    w.WriteU64(c.size);
    w.WriteU32(c.t);
    w.WriteU32(c.n);
    if (format_version >= 2) {
      w.WriteU8(c.dedup ? 1 : 0);
      w.WriteBytes(c.wrapped_key);
    }
    if (format_version >= 3) {
      w.WriteU32(static_cast<uint32_t>(c.share_digests.size()));
      for (const ShareDigest& sd : c.share_digests) {
        w.WriteU32(sd.share_index);
        w.WriteDigest(sd.digest);
      }
    }
  }
  w.WriteU32(static_cast<uint32_t>(v.shares.size()));
  for (const ShareLocation& s : v.shares) {
    w.WriteDigest(s.chunk_id);
    w.WriteU32(s.share_index);
    w.WriteI32(s.csp);
  }
  w.WriteU32(static_cast<uint32_t>(v.csp_directory.size()));
  for (const std::string& name : v.csp_directory) {
    w.WriteString(name);
  }
  return w.TakeData();
}

// --- BinaryWriter / BinaryReader ---

TEST(SerializeTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI32(-42);
  w.WriteDouble(3.14159);
  w.WriteString("cyrus");
  w.WriteBytes(Bytes{1, 2, 3});
  w.WriteDigest(Id("x"));

  BinaryReader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.ReadI32(), -42);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "cyrus");
  EXPECT_EQ(*r.ReadBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*r.ReadDigest(), Id("x"));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadFails) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(ByteSpan(w.data().data(), 2));
  EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, StringLengthBeyondBufferFails) {
  BinaryWriter w;
  w.WriteU32(1000);  // claims 1000 bytes follow
  BinaryReader r(w.data());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kDataLoss);
}

// --- FileVersion ---

TEST(FileVersionTest, SerializeRoundTrip) {
  const FileVersion v = MakeVersion("docs/paper.pdf", "v1");
  auto back = FileVersion::Deserialize(v.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, v.id);
  EXPECT_EQ(back->file_name, v.file_name);
  EXPECT_EQ(back->client_id, v.client_id);
  EXPECT_EQ(back->size, v.size);
  ASSERT_EQ(back->chunks.size(), 1u);
  EXPECT_EQ(back->chunks[0].id, v.chunks[0].id);
  EXPECT_EQ(back->chunks[0].t, 2u);
  ASSERT_EQ(back->shares.size(), 3u);
  EXPECT_EQ(back->shares[2].csp, 2);
}

TEST(FileVersionTest, DeserializeRejectsGarbage) {
  Bytes garbage = {1, 2, 3, 4, 5};
  EXPECT_EQ(FileVersion::Deserialize(garbage).status().code(), StatusCode::kDataLoss);
}

TEST(FileVersionTest, DeserializeRejectsTrailingBytes) {
  FileVersion v = MakeVersion("f", "v1");
  Bytes data = v.Serialize();
  data.push_back(0);
  EXPECT_EQ(FileVersion::Deserialize(data).status().code(), StatusCode::kDataLoss);
}

// v1 (pre-dedup) and v2 (pre-digest) envelopes written by older clients
// still parse; the absent fields come back defaulted, and a v1 -> v2 -> v3
// upgrade of the same logical record survives each hop intact.
TEST(FileVersionTest, LegacyEnvelopeVersionsRoundTrip) {
  FileVersion v = MakeVersion("legacy.bin", "legacy");
  v.chunks[0].dedup = true;
  v.chunks[0].wrapped_key = Bytes{9, 9, 9};
  v.chunks[0].SetShareDigest(0, Id("share-0"));
  v.chunks[0].SetShareDigest(1, Id("share-1"));

  // v1: no dedup pair, no digests.
  auto v1 = FileVersion::Deserialize(SerializeAtVersion(v, 1));
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v1->id, v.id);
  EXPECT_FALSE(v1->chunks[0].dedup);
  EXPECT_TRUE(v1->chunks[0].wrapped_key.empty());
  EXPECT_TRUE(v1->chunks[0].share_digests.empty());

  // v2: dedup pair survives, digests are still absent.
  auto v2 = FileVersion::Deserialize(SerializeAtVersion(v, 2));
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_TRUE(v2->chunks[0].dedup);
  EXPECT_EQ(v2->chunks[0].wrapped_key, (Bytes{9, 9, 9}));
  EXPECT_TRUE(v2->chunks[0].share_digests.empty());

  // v3 (the current writer): the digest set rides along and FindShareDigest
  // resolves by index.
  auto v3 = FileVersion::Deserialize(v.Serialize());
  ASSERT_TRUE(v3.ok()) << v3.status();
  ASSERT_EQ(v3->chunks[0].share_digests.size(), 2u);
  const Sha1Digest* d1 = v3->chunks[0].FindShareDigest(1);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(*d1, Id("share-1"));
  EXPECT_EQ(v3->chunks[0].FindShareDigest(7), nullptr);

  // The upgrade path a gather takes: re-serializing the v2 parse after
  // SetShareDigest produces a v3 object equal to the original.
  FileVersion upgraded = *v2;
  upgraded.chunks[0].SetShareDigest(0, Id("share-0"));
  upgraded.chunks[0].SetShareDigest(1, Id("share-1"));
  EXPECT_EQ(upgraded.Serialize(), v.Serialize());
}

TEST(FileVersionTest, SetShareDigestOverwritesInPlace) {
  ChunkRecord c;
  c.SetShareDigest(3, Id("first"));
  c.SetShareDigest(3, Id("second"));
  ASSERT_EQ(c.share_digests.size(), 1u);
  EXPECT_EQ(*c.FindShareDigest(3), Id("second"));
}

// A torn or truncated envelope - interrupted upload, partial object - must
// fail with a typed kDataLoss at every cut point, including cuts that land
// inside the v3 digest block, and never parse into a half-record.
TEST(FileVersionTest, TornEnvelopeFailsCleanAtEveryCut) {
  FileVersion v = MakeVersion("torn.bin", "torn");
  v.chunks[0].SetShareDigest(0, Id("d0"));
  v.chunks[0].SetShareDigest(1, Id("d1"));
  v.chunks[0].SetShareDigest(2, Id("d2"));
  const Bytes full = v.Serialize();
  ASSERT_TRUE(FileVersion::Deserialize(full).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto torn = FileVersion::Deserialize(ByteSpan(full.data(), cut));
    ASSERT_FALSE(torn.ok()) << "cut at " << cut << " parsed";
    EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss) << "cut at " << cut;
  }
}

// A digest-count field torn off from its payload (the count says 3, the
// bytes end after 1) is the nastiest truncation: the reader must not trust
// the count and over-read.
TEST(FileVersionTest, DigestCountBeyondBufferFails) {
  FileVersion v = MakeVersion("lying-count.bin", "lie");
  v.chunks[0].SetShareDigest(0, Id("d0"));
  Bytes data = v.Serialize();
  // Locate the digest-count u32 (value 1) right before the first digest
  // entry and inflate it; the object now claims more digests than it holds.
  const Bytes entry_prefix = [&] {
    BinaryWriter w;
    w.WriteU32(1);  // count
    w.WriteU32(0);  // share_index
    return w.TakeData();
  }();
  auto it = std::search(data.begin(), data.end(), entry_prefix.begin(),
                        entry_prefix.end());
  ASSERT_NE(it, data.end());
  *it = 0xFF;  // count 1 -> huge little-endian count
  auto parsed = FileVersion::Deserialize(data);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

// Format versions from the future are refused outright rather than
// misparsed field-by-field.
TEST(FileVersionTest, FutureFormatVersionRejected) {
  const FileVersion v = MakeVersion("future.bin", "future");
  const Bytes data = SerializeAtVersion(v, 4);
  auto parsed = FileVersion::Deserialize(data);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(FileVersionTest, SharesOfChunkSortedByIndex) {
  FileVersion v = MakeVersion("f", "v1");
  std::swap(v.shares[0], v.shares[2]);
  const auto shares = v.SharesOfChunk(v.chunks[0].id);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].share_index, 0u);
  EXPECT_EQ(shares[2].share_index, 2u);
}

TEST(FileVersionTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeVersion("f", "v1").Validate().ok());
}

TEST(FileVersionTest, ValidateRejectsBadTn) {
  FileVersion v = MakeVersion("f", "v1");
  v.chunks[0].t = 4;  // t > n
  EXPECT_FALSE(v.Validate().ok());
}

TEST(FileVersionTest, ValidateRejectsGappedOffsets) {
  FileVersion v = MakeVersion("f", "v1");
  v.chunks[0].offset = 10;
  EXPECT_FALSE(v.Validate().ok());
}

TEST(FileVersionTest, ValidateRejectsMissingShares) {
  FileVersion v = MakeVersion("f", "v1");
  v.shares.resize(1);  // fewer than t = 2 locations
  EXPECT_FALSE(v.Validate().ok());
}

TEST(FileVersionTest, ValidateRejectsSizeMismatch) {
  FileVersion v = MakeVersion("f", "v1");
  v.size = 999;
  EXPECT_FALSE(v.Validate().ok());
}

// --- VersionTree ---

TEST(VersionTreeTest, InsertAndFind) {
  VersionTree tree;
  const FileVersion v = MakeVersion("a.txt", "v1");
  ASSERT_TRUE(tree.Insert(v).ok());
  EXPECT_TRUE(tree.Contains(v.id));
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_NE(tree.Find(v.id), nullptr);
  EXPECT_EQ(tree.Find(v.id)->file_name, "a.txt");
}

TEST(VersionTreeTest, DuplicateInsertIsIdempotent) {
  VersionTree tree;
  const FileVersion v = MakeVersion("a.txt", "v1");
  ASSERT_TRUE(tree.Insert(v).ok());
  EXPECT_TRUE(tree.Insert(v).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(VersionTreeTest, MismatchedDuplicateRejected) {
  VersionTree tree;
  FileVersion v = MakeVersion("a.txt", "v1");
  ASSERT_TRUE(tree.Insert(v).ok());
  v.client_id = "someone-else";
  EXPECT_EQ(tree.Insert(v).code(), StatusCode::kAlreadyExists);
}

TEST(VersionTreeTest, LatestFollowsEditChain) {
  VersionTree tree;
  const FileVersion v1 = MakeVersion("a.txt", "v1");
  const FileVersion v2 = MakeVersion("a.txt", "v2", v1.id);
  ASSERT_TRUE(tree.Insert(v1).ok());
  ASSERT_TRUE(tree.Insert(v2).ok());
  auto latest = tree.Latest("a.txt");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)->id, v2.id);
}

TEST(VersionTreeTest, HistoryWalksBack) {
  VersionTree tree;
  const FileVersion v1 = MakeVersion("a.txt", "v1");
  const FileVersion v2 = MakeVersion("a.txt", "v2", v1.id);
  const FileVersion v3 = MakeVersion("a.txt", "v3", v2.id);
  for (const auto& v : {v1, v2, v3}) {
    ASSERT_TRUE(tree.Insert(v).ok());
  }
  auto history = tree.History(v3.id);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 3u);
  EXPECT_EQ((*history)[0]->id, v3.id);
  EXPECT_EQ((*history)[2]->id, v1.id);
}

TEST(VersionTreeTest, SameNameConflictDetected) {
  // Figure 8 left: two clients create "a.txt" independently.
  VersionTree tree;
  ASSERT_TRUE(tree.Insert(MakeVersion("a.txt", "client1-content")).ok());
  ASSERT_TRUE(tree.Insert(MakeVersion("a.txt", "client2-content")).ok());
  const auto conflicts = tree.DetectConflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].type, ConflictType::kSameName);
  EXPECT_EQ(conflicts[0].file_name, "a.txt");
  EXPECT_EQ(conflicts[0].versions.size(), 2u);
  EXPECT_EQ(tree.Latest("a.txt").status().code(), StatusCode::kConflict);
}

TEST(VersionTreeTest, DivergedVersionsConflictDetected) {
  // Figure 8 right: two clients edit the same parent.
  VersionTree tree;
  const FileVersion base = MakeVersion("a.txt", "base");
  const FileVersion edit1 = MakeVersion("a.txt", "edit1", base.id);
  const FileVersion edit2 = MakeVersion("a.txt", "edit2", base.id);
  for (const auto& v : {base, edit1, edit2}) {
    ASSERT_TRUE(tree.Insert(v).ok());
  }
  const auto conflicts = tree.DetectConflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].type, ConflictType::kDivergedVersions);
}

TEST(VersionTreeTest, DetectConflictsForWalksUpward) {
  VersionTree tree;
  const FileVersion base = MakeVersion("a.txt", "base");
  const FileVersion edit1 = MakeVersion("a.txt", "edit1", base.id);
  const FileVersion edit2 = MakeVersion("a.txt", "edit2", base.id);
  const FileVersion edit3 = MakeVersion("a.txt", "edit3", edit2.id);
  for (const auto& v : {base, edit1, edit2, edit3}) {
    ASSERT_TRUE(tree.Insert(v).ok());
  }
  // From the grandchild, the upward walk still finds the divergence at base.
  const auto conflicts = tree.DetectConflictsFor(edit3.id);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].type, ConflictType::kDivergedVersions);
}

TEST(VersionTreeTest, NoConflictOnLinearHistory) {
  VersionTree tree;
  const FileVersion v1 = MakeVersion("a.txt", "v1");
  const FileVersion v2 = MakeVersion("a.txt", "v2", v1.id);
  ASSERT_TRUE(tree.Insert(v1).ok());
  ASSERT_TRUE(tree.Insert(v2).ok());
  EXPECT_TRUE(tree.DetectConflicts().empty());
  EXPECT_TRUE(tree.DetectConflictsFor(v2.id).empty());
}

TEST(VersionTreeTest, DeletionMarkerHidesFile) {
  VersionTree tree;
  const FileVersion v1 = MakeVersion("a.txt", "v1");
  FileVersion marker = MakeVersion("a.txt", "deleted", v1.id);
  marker.deleted = true;
  marker.chunks.clear();
  marker.shares.clear();
  marker.size = 0;
  ASSERT_TRUE(tree.Insert(v1).ok());
  ASSERT_TRUE(tree.Insert(marker).ok());
  EXPECT_EQ(tree.Latest("a.txt").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.FileNames().empty());
  EXPECT_EQ(tree.FileNames(/*include_deleted=*/true).size(), 1u);
  // Undelete path: history from the marker still reaches v1.
  auto history = tree.History(marker.id);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)[1]->id, v1.id);
}

TEST(VersionTreeTest, UpdateShareLocations) {
  VersionTree tree;
  const FileVersion v = MakeVersion("a.txt", "v1");
  ASSERT_TRUE(tree.Insert(v).ok());
  std::vector<ShareLocation> moved = v.shares;
  moved[0].csp = 9;
  ASSERT_TRUE(tree.UpdateShareLocations(v.id, moved).ok());
  EXPECT_EQ(tree.Find(v.id)->shares[0].csp, 9);
  EXPECT_EQ(tree.UpdateShareLocations(Id("missing"), {}).code(), StatusCode::kNotFound);
}

TEST(VersionTreeTest, FileNamesSortedAndLive) {
  VersionTree tree;
  ASSERT_TRUE(tree.Insert(MakeVersion("b.txt", "b1")).ok());
  ASSERT_TRUE(tree.Insert(MakeVersion("a.txt", "a1")).ok());
  EXPECT_EQ(tree.FileNames(), (std::vector<std::string>{"a.txt", "b.txt"}));
}

// --- ChunkTable ---

TEST(ChunkTableTest, InsertLookupRefcount) {
  ChunkTable table;
  const Sha1Digest id = Id("chunk1");
  ChunkEntry entry;
  entry.size = 1000;
  entry.t = 2;
  entry.n = 3;
  entry.shares = {{0, 0}, {1, 1}, {2, 2}};
  ASSERT_TRUE(table.Insert(id, entry).ok());
  EXPECT_TRUE(table.Contains(id));
  EXPECT_EQ(table.Find(id)->refcount, 1u);
  ASSERT_TRUE(table.AddRef(id).ok());
  EXPECT_EQ(table.Find(id)->refcount, 2u);
  ASSERT_TRUE(table.Release(id).ok());
  ASSERT_TRUE(table.Release(id).ok());
  EXPECT_EQ(table.Find(id)->refcount, 0u);
  EXPECT_EQ(table.Release(id).code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkTableTest, DuplicateInsertRejected) {
  ChunkTable table;
  ASSERT_TRUE(table.Insert(Id("c"), ChunkEntry{}).ok());
  EXPECT_EQ(table.Insert(Id("c"), ChunkEntry{}).code(), StatusCode::kAlreadyExists);
}

TEST(ChunkTableTest, MoveShare) {
  ChunkTable table;
  ChunkEntry entry;
  entry.shares = {{0, 5}, {1, 6}};
  ASSERT_TRUE(table.Insert(Id("c"), entry).ok());
  ASSERT_TRUE(table.MoveShare(Id("c"), 5, 0, 9, 7).ok());
  EXPECT_EQ(table.Find(Id("c"))->shares[0].csp, 9);
  EXPECT_EQ(table.Find(Id("c"))->shares[0].share_index, 7u);
  EXPECT_EQ(table.MoveShare(Id("c"), 5, 0, 9, 7).code(), StatusCode::kNotFound);
}

TEST(ChunkTableTest, AddShareRejectsDuplicateIndex) {
  ChunkTable table;
  ChunkEntry entry;
  entry.shares = {{0, 5}};
  ASSERT_TRUE(table.Insert(Id("c"), entry).ok());
  ASSERT_TRUE(table.AddShare(Id("c"), ChunkShare{1, 6}).ok());
  EXPECT_EQ(table.AddShare(Id("c"), ChunkShare{1, 7}).code(),
            StatusCode::kAlreadyExists);
}

TEST(ChunkTableTest, RemoveShare) {
  ChunkTable table;
  ChunkEntry entry;
  entry.shares = {{0, 5}, {1, 6}};
  ASSERT_TRUE(table.Insert(Id("c"), entry).ok());
  ASSERT_TRUE(table.RemoveShare(Id("c"), 5, 0).ok());
  ASSERT_EQ(table.Find(Id("c"))->shares.size(), 1u);
  EXPECT_EQ(table.Find(Id("c"))->shares[0].csp, 6);
  // Gone already; and the other share only matches on both csp and index.
  EXPECT_EQ(table.RemoveShare(Id("c"), 5, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.RemoveShare(Id("c"), 6, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.RemoveShare(Id("missing"), 6, 1).code(), StatusCode::kNotFound);
}

TEST(ChunkTableTest, AllChunkIds) {
  ChunkTable table;
  EXPECT_TRUE(table.AllChunkIds().empty());
  ASSERT_TRUE(table.Insert(Id("a"), ChunkEntry{}).ok());
  ASSERT_TRUE(table.Insert(Id("b"), ChunkEntry{}).ok());
  std::vector<Sha1Digest> ids = table.AllChunkIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE((ids[0] == Id("a") && ids[1] == Id("b")) ||
              (ids[0] == Id("b") && ids[1] == Id("a")));
}

TEST(ChunkTableTest, ChunksOnCsp) {
  ChunkTable table;
  ChunkEntry on_zero;
  on_zero.shares = {{0, 0}, {1, 1}};
  ChunkEntry off_zero;
  off_zero.shares = {{0, 1}, {1, 2}};
  ASSERT_TRUE(table.Insert(Id("a"), on_zero).ok());
  ASSERT_TRUE(table.Insert(Id("b"), off_zero).ok());
  EXPECT_EQ(table.ChunksOnCsp(0).size(), 1u);
  EXPECT_EQ(table.ChunksOnCsp(1).size(), 2u);
  EXPECT_TRUE(table.ChunksOnCsp(7).empty());
}

TEST(ChunkTableTest, SerializeRoundTrip) {
  ChunkTable table;
  ChunkEntry entry;
  entry.size = 4096;
  entry.t = 3;
  entry.n = 5;
  entry.shares = {{0, 1}, {2, 3}};
  ASSERT_TRUE(table.Insert(Id("c1"), entry).ok());
  ASSERT_TRUE(table.AddRef(Id("c1")).ok());
  ASSERT_TRUE(table.Insert(Id("c2"), ChunkEntry{}).ok());

  auto back = ChunkTable::Deserialize(table.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  const ChunkEntry* e = back->Find(Id("c1"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->size, 4096u);
  EXPECT_EQ(e->refcount, 2u);
  ASSERT_EQ(e->shares.size(), 2u);
  EXPECT_EQ(e->shares[1].csp, 3);
}

TEST(ChunkTableTest, DedupFieldsRoundTrip) {
  ChunkTable table;
  ChunkEntry entry;
  entry.size = 4096;
  entry.logical_size = 8192;  // compressed-at-rest style divergence
  entry.t = 3;
  entry.n = 5;
  entry.dedup = true;
  entry.wrapped_key = Bytes{0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(table.Insert(Id("cd"), entry).ok());
  // logical_size defaults to size when the writer leaves it unset.
  ChunkEntry plain;
  plain.size = 512;
  plain.t = 2;
  plain.n = 3;
  ASSERT_TRUE(table.Insert(Id("cp"), plain).ok());

  auto back = ChunkTable::Deserialize(table.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  const ChunkEntry* d = back->Find(Id("cd"));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->logical_size, 8192u);
  EXPECT_TRUE(d->dedup);
  EXPECT_EQ(d->wrapped_key, (Bytes{0xde, 0xad, 0xbe, 0xef}));
  const ChunkEntry* p = back->Find(Id("cp"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->logical_size, 512u);
  EXPECT_FALSE(p->dedup);
  EXPECT_TRUE(p->wrapped_key.empty());
}

TEST(FileVersionTest, DedupChunkRecordRoundTrip) {
  FileVersion v = MakeVersion("dedup.bin", "dedup-content");
  v.chunks[0].dedup = true;
  v.chunks[0].wrapped_key = Bytes{1, 2, 3, 4, 5};
  auto back = FileVersion::Deserialize(v.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->chunks.size(), 1u);
  EXPECT_TRUE(back->chunks[0].dedup);
  EXPECT_EQ(back->chunks[0].wrapped_key, (Bytes{1, 2, 3, 4, 5}));
}

// Per-share digests in the chunk table: SetShareDigest records, MoveShare
// carries (or clears) the digest, and both survive a serialize round trip.
TEST(ChunkTableTest, ShareDigestsRoundTrip) {
  ChunkTable table;
  ChunkEntry entry;
  entry.size = 2048;
  entry.t = 2;
  entry.n = 3;
  entry.shares = {{0, 5}, {1, 6}, {2, 7}};
  ASSERT_TRUE(table.Insert(Id("cs"), entry).ok());
  ASSERT_TRUE(table.SetShareDigest(Id("cs"), 0, Id("sd-0")).ok());
  ASSERT_TRUE(table.SetShareDigest(Id("cs"), 2, Id("sd-2")).ok());
  EXPECT_EQ(table.SetShareDigest(Id("cs"), 9, Id("sd-9")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(table.SetShareDigest(Id("nope"), 0, Id("x")).code(),
            StatusCode::kNotFound);

  auto back = ChunkTable::Deserialize(table.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  const ChunkEntry* e = back->Find(Id("cs"));
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->shares.size(), 3u);
  EXPECT_TRUE(e->shares[0].has_digest());
  EXPECT_EQ(e->shares[0].digest, Id("sd-0"));
  EXPECT_FALSE(e->shares[1].has_digest());  // all-zero sentinel = unknown
  EXPECT_TRUE(e->shares[2].has_digest());

  // MoveShare to a new index without a fresh digest clears the stale one
  // (index i's bytes differ from index j's); with a digest, it adopts it.
  ASSERT_TRUE(back->MoveShare(Id("cs"), 5, 0, 8, 3).ok());
  EXPECT_FALSE(back->Find(Id("cs"))->shares[0].has_digest());
  ASSERT_TRUE(back->MoveShare(Id("cs"), 7, 2, 9, 4, Id("sd-4")).ok());
  const ChunkShare& moved = back->Find(Id("cs"))->shares[2];
  EXPECT_EQ(moved.share_index, 4u);
  EXPECT_TRUE(moved.has_digest());
  EXPECT_EQ(moved.digest, Id("sd-4"));
}

// VersionTree::UpdateChunkShareDigests patches every ChunkMap row holding
// the chunk (duplicate content within one file shares its stored shares).
TEST(VersionTreeTest, UpdateChunkShareDigests) {
  VersionTree tree;
  FileVersion v = MakeVersion("dup.bin", "dup");
  ChunkRecord twin = v.chunks[0];  // same chunk id, second row
  twin.offset = v.chunks[0].size;
  v.chunks.push_back(twin);
  v.size = v.chunks[0].size * 2;
  ASSERT_TRUE(tree.Insert(v).ok());

  ASSERT_TRUE(tree.UpdateChunkShareDigests(
                      v.id, v.chunks[0].id,
                      {ShareDigest{0, Id("u-0")}, ShareDigest{2, Id("u-2")}})
                  .ok());
  const FileVersion* stored = tree.Find(v.id);
  ASSERT_NE(stored, nullptr);
  for (const ChunkRecord& chunk : stored->chunks) {
    ASSERT_EQ(chunk.share_digests.size(), 2u);
    EXPECT_EQ(*chunk.FindShareDigest(0), Id("u-0"));
    EXPECT_EQ(*chunk.FindShareDigest(2), Id("u-2"));
  }
  EXPECT_EQ(tree.UpdateChunkShareDigests(Id("missing"), v.chunks[0].id, {}).code(),
            StatusCode::kNotFound);
}

TEST(ChunkTableTest, TotalUniqueBytes) {
  ChunkTable table;
  ChunkEntry a;
  a.size = 100;
  ChunkEntry b;
  b.size = 250;
  ASSERT_TRUE(table.Insert(Id("a"), a).ok());
  ASSERT_TRUE(table.Insert(Id("b"), b).ok());
  EXPECT_EQ(table.TotalUniqueBytes(), 350u);
}


// --- shard split/merge bookkeeping (gateway metadata tier) ---------------

TEST(ChunkTableTest, ExtractIfMovesDepartingEntries) {
  ChunkTable table;
  ChunkEntry small;
  small.size = 100;
  ChunkEntry large;
  large.size = 9000;
  ASSERT_TRUE(table.Insert(Id("keep-1"), small).ok());
  ASSERT_TRUE(table.Insert(Id("keep-2"), small).ok());
  ASSERT_TRUE(table.Insert(Id("depart"), large).ok());

  ChunkTable departed = table.ExtractIf(
      [](const Sha1Digest&, const ChunkEntry& entry) { return entry.size > 1000; });

  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(departed.size(), 1u);
  EXPECT_FALSE(table.Contains(Id("depart")));
  EXPECT_TRUE(departed.Contains(Id("depart")));
  // Entries moved wholesale: refcounts and shares survive the extraction.
  EXPECT_EQ(departed.Find(Id("depart"))->size, 9000u);
}

TEST(ChunkTableTest, AbsorbMergesDisjointAndSharedEntries) {
  ChunkTable a;
  ChunkTable b;
  ChunkEntry entry;
  entry.size = 512;
  entry.t = 2;
  entry.n = 3;
  entry.shares = {{0, 0}, {1, 1}};
  ASSERT_TRUE(a.Insert(Id("only-a"), entry).ok());
  ASSERT_TRUE(a.Insert(Id("both"), entry).ok());
  ChunkEntry other = entry;
  other.shares = {{1, 1}, {2, 2}};  // one duplicate, one new location
  ASSERT_TRUE(b.Insert(Id("both"), other).ok());
  ASSERT_TRUE(b.AddRef(Id("both")).ok());
  ASSERT_TRUE(b.Insert(Id("only-b"), entry).ok());

  ASSERT_TRUE(a.Absorb(std::move(b)).ok());
  EXPECT_EQ(a.size(), 3u);
  const ChunkEntry* both = a.Find(Id("both"));
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(both->refcount, 3u);           // 1 + 2
  EXPECT_EQ(both->shares.size(), 3u);      // union, duplicate dropped
}

TEST(ChunkTableTest, AbsorbRejectsDivergentEntries) {
  ChunkTable a;
  ChunkTable b;
  ChunkEntry mine;
  mine.size = 512;
  ChunkEntry theirs;
  theirs.size = 1024;  // same chunk id, different size: corruption
  ASSERT_TRUE(a.Insert(Id("clash"), mine).ok());
  ASSERT_TRUE(b.Insert(Id("clash"), theirs).ok());
  EXPECT_EQ(a.Absorb(std::move(b)).code(), StatusCode::kDataLoss);
  // The failed merge left the receiver untouched.
  EXPECT_EQ(a.Find(Id("clash"))->size, 512u);
}

TEST(ShardMapTest, RoutesAreDeterministicAndCoverAllShards) {
  ShardMap map;
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(map.AddShard().ok());
  }
  std::set<int> used;
  for (int i = 0; i < 64; ++i) {
    const std::string path = "t/alice/file-" + std::to_string(i);
    auto first = map.ShardFor(path);
    ASSERT_TRUE(first.ok());
    auto second = map.ShardFor(path);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value());
    used.insert(first.value());
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardMapTest, SplitStealsOnlyFromVictim) {
  ShardMap map;
  ASSERT_TRUE(map.AddShard().ok());
  ASSERT_TRUE(map.AddShard().ok());
  std::map<std::string, int> before;
  for (int i = 0; i < 200; ++i) {
    const std::string path = "p" + std::to_string(i);
    before[path] = map.ShardFor(path).value();
  }
  auto split = map.SplitShard(1);
  ASSERT_TRUE(split.ok()) << split.status();
  const int new_shard = split.value();
  int moved = 0;
  for (const auto& [path, old_shard] : before) {
    const int now = map.ShardFor(path).value();
    if (old_shard == 0) {
      EXPECT_EQ(now, 0) << path;  // bystander keyspace untouched
    } else if (now != old_shard) {
      EXPECT_EQ(now, new_shard) << path;  // moves only victim -> new
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardMapTest, MergeHandsKeyspaceToSuccessors) {
  ShardMap map;
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(map.AddShard().ok());
  }
  std::map<std::string, int> before;
  for (int i = 0; i < 120; ++i) {
    const std::string path = "m" + std::to_string(i);
    before[path] = map.ShardFor(path).value();
  }
  ASSERT_TRUE(map.MergeShard(1).ok());
  EXPECT_EQ(map.num_shards(), 2u);
  for (const auto& [path, old_shard] : before) {
    const int now = map.ShardFor(path).value();
    if (old_shard != 1) {
      EXPECT_EQ(now, old_shard) << path;  // unaffected keyspace stays put
    } else {
      EXPECT_NE(now, 1) << path;
    }
  }
  // The last shard is irremovable.
  ASSERT_TRUE(map.MergeShard(0).ok());
  EXPECT_EQ(map.MergeShard(2).code(), StatusCode::kFailedPrecondition);
}

TEST(ShardMapTest, RouteReportsLazyMigrationExactlyOnce) {
  ShardMap map;
  ASSERT_TRUE(map.AddShard().ok());
  ASSERT_TRUE(map.AddShard().ok());
  // Establish residency for a batch of paths.
  std::vector<std::string> paths;
  for (int i = 0; i < 100; ++i) {
    paths.push_back("lazy-" + std::to_string(i));
    ASSERT_TRUE(map.Route(paths.back()).ok());
  }
  auto split = map.SplitShard(0);
  ASSERT_TRUE(split.ok()) << split.status();
  int migrations = 0;
  for (const std::string& path : paths) {
    auto route = map.Route(path);
    ASSERT_TRUE(route.ok());
    if (route.value().migrated) {
      EXPECT_EQ(route.value().moved_from, 0);
      EXPECT_EQ(route.value().shard, split.value());
      ++migrations;
    }
  }
  EXPECT_GT(migrations, 0);
  // Residency updated: a second pass reports nothing to move.
  for (const std::string& path : paths) {
    EXPECT_FALSE(map.Route(path).value().migrated);
  }
}

TEST(ShardMapTest, SerializeRoundTripsTopologyAndResidency) {
  ShardMap map(32);
  ASSERT_TRUE(map.AddShard().ok());
  ASSERT_TRUE(map.AddShard().ok());
  ASSERT_TRUE(map.SplitShard(1).ok());
  ASSERT_TRUE(map.Route("t/a/x").ok());
  ASSERT_TRUE(map.Route("t/b/y").ok());

  auto back = ShardMap::Deserialize(map.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_shards(), map.num_shards());
  EXPECT_EQ(back->ShardIds(), map.ShardIds());
  for (int i = 0; i < 100; ++i) {
    const std::string path = "rt-" + std::to_string(i);
    EXPECT_EQ(back->ShardFor(path).value(), map.ShardFor(path).value()) << path;
  }
  // Residency carried over: no spurious migrations after recovery.
  EXPECT_FALSE(back->Route("t/a/x").value().migrated);

  // Corrupt input fails loudly instead of half-loading.
  Bytes bytes = map.Serialize();
  bytes[0] ^= 0xff;
  EXPECT_EQ(ShardMap::Deserialize(bytes).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ShardMap::Deserialize(Bytes{1, 2, 3}).status().code(),
            StatusCode::kDataLoss);
}

TEST(VersionTreeTest, RandomizedForestInvariants) {
  // Random insertion of creation roots and edits (in shuffled arrival
  // order, as metadata sync delivers them) must preserve: every inserted
  // version findable; heads have no children; history terminates; and the
  // number of live names matches a reference model.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(7000 + seed);
    std::vector<FileVersion> versions;
    std::map<std::string, std::vector<size_t>> chains;  // name -> version idx
    for (int op = 0; op < 60; ++op) {
      const std::string name = "f" + std::to_string(rng.NextBelow(6));
      auto& chain = chains[name];
      FileVersion v = MakeVersion(
          name, "content-" + std::to_string(seed) + "-" + std::to_string(op),
          chain.empty() ? Sha1Digest{}
                        : versions[chain[rng.NextBelow(chain.size())]].id);
      v.modified_time = op;
      chain.push_back(versions.size());
      versions.push_back(v);
    }
    // Shuffled arrival.
    std::vector<size_t> order(versions.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    VersionTree tree;
    for (size_t idx : order) {
      ASSERT_TRUE(tree.Insert(versions[idx]).ok());
    }
    EXPECT_EQ(tree.size(), versions.size());
    for (const FileVersion& v : versions) {
      ASSERT_NE(tree.Find(v.id), nullptr);
      auto history = tree.History(v.id);
      ASSERT_TRUE(history.ok());
      EXPECT_TRUE(IsNullDigest(history->back()->prev_id));
    }
    for (const auto& [name, chain] : chains) {
      for (const FileVersion* head : tree.Heads(name)) {
        EXPECT_TRUE(tree.Children(head->id).empty());
      }
      EXPECT_FALSE(tree.Heads(name).empty());
    }
  }
}

}  // namespace
}  // namespace cyrus
