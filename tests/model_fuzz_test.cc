// Model-based randomized integration test.
//
// Drives two CYRUS clients over shared simulated providers with a random
// interleaving of operations (put, edit, get, delete, sync, CSP outage and
// recovery), checking the system against a simple reference model of what
// each file should contain. Conflicts are avoided by construction here
// (each client owns a name prefix); the dedicated conflict tests cover
// divergence. This test's job is to catch state-machine corruption across
// long operation sequences - dedup refcounts, metadata staleness, failover
// paths, migration - that unit tests with short scripts miss.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

struct Fixture {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::vector<std::unique_ptr<CyrusClient>> clients;

  explicit Fixture(uint64_t seed, int num_csps = 5, int num_clients = 2) {
    for (int i = 0; i < num_csps; ++i) {
      SimulatedCspOptions o;
      o.id = StrCat("csp", i);
      o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
      csps.push_back(std::make_shared<SimulatedCsp>(o));
    }
    for (int c = 0; c < num_clients; ++c) {
      CyrusConfig config;
      config.key_string = StrCat("fuzz key ", seed);
      config.client_id = StrCat("client", c);
      config.t = 2;
      config.epsilon = 1e-3;
      config.chunker = ChunkerOptions::ForTesting();
      config.cluster_aware = false;
      auto client = CyrusClient::Create(config);
      EXPECT_TRUE(client.ok());
      clients.push_back(std::move(client).value());
      for (auto& csp : csps) {
        CspProfile profile;
        profile.download_bytes_per_sec = 2e6;
        profile.upload_bytes_per_sec = 1e6;
        EXPECT_TRUE(clients[c]->AddCsp(csp, profile, Credentials{"token"}).ok());
      }
    }
  }
};

class ModelFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelFuzz, LongRandomOperationSequenceStaysConsistent) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Fixture fx(seed);

  // Reference model: the content each *file name* should hold. A name is
  // owned by one client (prefix) so cross-client conflicts cannot arise;
  // reads may go through either client after a sync.
  std::map<std::string, Bytes> model;
  double now = 0.0;
  int down_csp = -1;

  auto random_content = [&rng](size_t max_kb) {
    Bytes content(1 + rng.NextBelow(max_kb * 1024));
    for (auto& b : content) {
      b = static_cast<uint8_t>(rng.Next());
    }
    return content;
  };

  const int kSteps = 120;
  for (int step = 0; step < kSteps; ++step) {
    now += 1.0 + rng.NextDouble() * 10.0;
    const size_t actor = rng.NextBelow(fx.clients.size());
    CyrusClient& client = *fx.clients[actor];
    client.set_time(now);

    const uint64_t action = rng.NextBelow(100);
    if (action < 30) {
      // Put a new or edited file under the actor's prefix.
      const std::string name =
          StrCat("c", actor, "/file", rng.NextBelow(8), ".bin");
      Bytes content = random_content(24);
      if (rng.NextBool(0.3) && model.count(name) > 0) {
        // Local edit: mutate a few bytes of the current content instead.
        content = model[name];
        for (int k = 0; k < 5 && !content.empty(); ++k) {
          content[rng.NextBelow(content.size())] ^= 0xA5;
        }
      }
      auto put = client.Put(name, content);
      ASSERT_TRUE(put.ok()) << "step " << step << ": " << put.status();
      model[name] = std::move(content);
    } else if (action < 55) {
      // Read a random model file through a random client.
      if (model.empty()) {
        continue;
      }
      auto it = model.begin();
      std::advance(it, rng.NextBelow(model.size()));
      auto get = client.Get(it->first);
      ASSERT_TRUE(get.ok()) << "step " << step << " get " << it->first << ": "
                            << get.status();
      EXPECT_EQ(get->content, it->second) << "step " << step;
    } else if (action < 65) {
      // Delete a file owned by the actor.
      std::vector<std::string> owned;
      for (const auto& [name, content] : model) {
        if (StartsWith(name, StrCat("c", actor, "/"))) {
          owned.push_back(name);
        }
      }
      if (owned.empty()) {
        continue;
      }
      const std::string victim = owned[rng.NextBelow(owned.size())];
      // The owner may not have synced a deletion marker's parent yet if the
      // *other* client deleted... names are owned, so Delete always sees
      // its own chain after a sync.
      ASSERT_TRUE(client.SyncMetadata().ok());
      Status deleted = client.Delete(victim);
      ASSERT_TRUE(deleted.ok()) << "step " << step << ": " << deleted;
      model.erase(victim);
    } else if (action < 80) {
      // Explicit metadata sync on a random client.
      auto sync = client.SyncMetadata();
      ASSERT_TRUE(sync.ok()) << "step " << step << ": " << sync.status();
      EXPECT_TRUE(sync->empty()) << "unexpected conflict at step " << step;
    } else if (action < 90) {
      // Toggle an outage (at most one CSP down at a time; with n >= 3 and
      // t = 2 a single outage must never lose data).
      if (down_csp < 0) {
        down_csp = static_cast<int>(rng.NextBelow(fx.csps.size()));
        fx.csps[down_csp]->set_available(false);
      } else {
        fx.csps[down_csp]->set_available(true);
        for (auto& cl : fx.clients) {
          ASSERT_TRUE(cl->MarkCspRecovered(down_csp).ok());
        }
        down_csp = -1;
      }
    } else {
      // List through a random client and cross-check live names.
      ASSERT_TRUE(client.SyncMetadata().ok());
      auto listing = client.List("");
      ASSERT_TRUE(listing.ok());
      std::set<std::string> listed;
      for (const FileListing& f : *listing) {
        listed.insert(f.name);
      }
      for (const auto& [name, content] : model) {
        // The lister may not have seen a file yet if it was uploaded while
        // a CSP it relies on was down; only check when all CSPs are up.
        if (down_csp < 0) {
          EXPECT_TRUE(listed.count(name)) << "step " << step << " missing " << name;
        }
      }
    }
  }

  // Settle: bring everything up, sync both clients, verify every file.
  if (down_csp >= 0) {
    fx.csps[down_csp]->set_available(true);
    for (auto& cl : fx.clients) {
      ASSERT_TRUE(cl->MarkCspRecovered(down_csp).ok());
    }
  }
  for (auto& cl : fx.clients) {
    ASSERT_TRUE(cl->SyncMetadata().ok());
  }
  for (const auto& [name, content] : model) {
    for (auto& cl : fx.clients) {
      auto get = cl->Get(name);
      ASSERT_TRUE(get.ok()) << "final get " << name << ": " << get.status();
      EXPECT_EQ(get->content, content) << name;
    }
  }

  // A brand-new device must reconstruct the identical state.
  CyrusConfig config;
  config.key_string = StrCat("fuzz key ", seed);
  config.client_id = "late-joiner";
  config.t = 2;
  config.epsilon = 1e-3;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  auto fresh = std::move(CyrusClient::Create(config)).value();
  for (auto& csp : fx.csps) {
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    ASSERT_TRUE(fresh->AddCsp(csp, profile, Credentials{"token"}).ok());
  }
  ASSERT_TRUE(fresh->Recover().ok());
  auto listing = fresh->List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), model.size());
  for (const auto& [name, content] : model) {
    auto get = fresh->Get(name);
    ASSERT_TRUE(get.ok()) << "recovered get " << name << ": " << get.status();
    EXPECT_EQ(get->content, content) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cyrus
