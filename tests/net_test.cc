#include <gtest/gtest.h>

#include <set>

#include "src/net/clustering.h"
#include "src/net/providers.h"
#include "src/net/tcp_model.h"
#include "src/net/topology.h"
#include "src/net/union_find.h"

namespace cyrus {
namespace {

// --- TCP model: must reproduce Table 2's throughput column from its RTTs ---

TEST(TcpModelTest, ReproducesTable2Rows) {
  // Spot-check the four prototype CSPs plus the extremes.
  EXPECT_NEAR(TcpThroughputMbps(137), 2.314, 0.01);  // Dropbox
  EXPECT_NEAR(TcpThroughputMbps(71), 4.465, 0.01);   // Google Drive
  EXPECT_NEAR(TcpThroughputMbps(142), 2.233, 0.01);  // OneDrive
  EXPECT_NEAR(TcpThroughputMbps(149), 2.128, 0.01);  // Box
  EXPECT_NEAR(TcpThroughputMbps(235), 1.349, 0.01);  // Amazon S3
  EXPECT_NEAR(TcpThroughputMbps(295), 1.075, 0.01);  // Safe Creative
}

TEST(TcpModelTest, EveryTable2RowWithinPrintPrecision) {
  for (const ProviderInfo& p : PaperProviders()) {
    const double expected[] = {1.349, 2.128, 2.314, 2.233, 4.465, 2.171, 1.474,
                               1.704, 1.651, 1.474, 1.704, 1.461, 2.281, 2.072,
                               1.651, 1.509, 1.546, 1.075, 1.569, 1.082};
    const size_t row = static_cast<size_t>(&p - PaperProviders().data());
    EXPECT_NEAR(TcpThroughputMbps(p.rtt_ms), expected[row], 0.01) << p.name;
  }
}

TEST(TcpModelTest, WindowLimitBindsAtLowRtt) {
  // At 10 ms, the loss limit (~32 Mbps) exceeds the window limit
  // (65535*8/0.01 = 52.4 Mbps)? Compute both regimes explicitly.
  TcpModelParams params;
  const double window_limit = params.window_bytes * 8.0 / 0.005;
  const double got = TcpThroughputBps(5.0, params);
  EXPECT_LE(got, window_limit + 1.0);
}

TEST(TcpModelTest, ThroughputDecreasesWithRtt) {
  double prev = 1e18;
  for (double rtt = 10; rtt <= 500; rtt += 10) {
    const double bps = TcpThroughputBps(rtt);
    EXPECT_LT(bps, prev);
    prev = bps;
  }
}

TEST(TcpModelTest, InverseModelRoundTrips) {
  for (double mbps : {1.0, 2.0, 4.0}) {
    const double rtt = RttForThroughputMbps(mbps);
    EXPECT_NEAR(TcpThroughputMbps(rtt), mbps, 0.01);
  }
}

TEST(TcpModelTest, LowerLossMeansMoreThroughput) {
  TcpModelParams lossy;
  lossy.loss_rate = 0.01;
  TcpModelParams clean;
  clean.loss_rate = 0.0001;
  // Use a large RTT so the window cap binds in neither case.
  EXPECT_GT(TcpThroughputBps(300, clean), TcpThroughputBps(300, lossy));
}

// --- Providers catalog ---

TEST(ProvidersTest, TwentyRowsFiveOnAmazon) {
  EXPECT_EQ(PaperProviders().size(), 20u);
  size_t amazon = 0;
  for (const ProviderInfo& p : PaperProviders()) {
    amazon += p.on_amazon ? 1 : 0;
  }
  EXPECT_EQ(amazon, 5u);  // the asterisked rows of Table 2
}

TEST(ProvidersTest, PrototypeUsesFourCsps) {
  EXPECT_EQ(PrototypeProviders().size(), 4u);
  std::set<std::string_view> names;
  for (const ProviderInfo& p : PrototypeProviders()) {
    names.insert(p.name);
  }
  EXPECT_TRUE(names.count("Dropbox"));
  EXPECT_TRUE(names.count("Google Drive"));
  EXPECT_TRUE(names.count("OneDrive"));
  EXPECT_TRUE(names.count("Box"));
}

// --- UnionFind ---

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already joined
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveClosureOnChain) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) {
    uf.Union(i, i + 1);
  }
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
}

// --- Topology ---

TEST(TopologyTest, ShortestPathPrefersLowLatency) {
  Topology topo;
  const int a = topo.AddNode(NodeKind::kClient, "a");
  const int b = topo.AddNode(NodeKind::kRouter, "b");
  const int c = topo.AddNode(NodeKind::kRouter, "c");
  const int d = topo.AddNode(NodeKind::kCspEndpoint, "d");
  topo.AddLink(a, b, 1.0);
  topo.AddLink(b, d, 1.0);
  topo.AddLink(a, c, 0.5);
  topo.AddLink(c, d, 10.0);
  auto path = topo.ShortestPath(a, d);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<int>{a, b, d}));
}

TEST(TopologyTest, DisconnectedNodesFail) {
  Topology topo;
  const int a = topo.AddNode(NodeKind::kClient, "a");
  const int b = topo.AddNode(NodeKind::kRouter, "b");
  EXPECT_EQ(topo.ShortestPath(a, b).status().code(), StatusCode::kNotFound);
}

TEST(TopologyTest, TracerouteCumulativeRtts) {
  Topology topo;
  const int a = topo.AddNode(NodeKind::kClient, "a");
  const int b = topo.AddNode(NodeKind::kRouter, "b");
  const int c = topo.AddNode(NodeKind::kCspEndpoint, "c");
  topo.AddLink(a, b, 5.0);
  topo.AddLink(b, c, 20.0);
  auto hops = topo.Traceroute(a, c);
  ASSERT_TRUE(hops.ok());
  ASSERT_EQ(hops->size(), 3u);
  EXPECT_DOUBLE_EQ((*hops)[0].rtt_ms, 0.0);
  EXPECT_DOUBLE_EQ((*hops)[1].rtt_ms, 10.0);   // 2 x 5
  EXPECT_DOUBLE_EQ((*hops)[2].rtt_ms, 50.0);   // 2 x 25
}

TEST(TopologyTest, OutOfRangeNodeRejected) {
  Topology topo;
  topo.AddNode(NodeKind::kClient, "a");
  EXPECT_EQ(topo.ShortestPath(0, 7).status().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ProviderTopologyShape) {
  PlatformSpec amazon{"amazon", {"s3", "bitcasa"}, 30.0, 1.0};
  PlatformSpec solo{"gcp", {"gdrive"}, 20.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({amazon, solo});
  EXPECT_EQ(pt.csp_nodes.size(), 3u);
  EXPECT_EQ(pt.csp_names, (std::vector<std::string>{"s3", "bitcasa", "gdrive"}));
  // Every CSP is reachable from the client.
  for (int csp : pt.csp_nodes) {
    EXPECT_TRUE(pt.topology.ShortestPath(pt.client, csp).ok());
  }
}

// --- Clustering (Figure 3) ---

TEST(ClusteringTest, SharedGatewayCspsCluster) {
  PlatformSpec amazon{"amazon", {"s3", "bitcasa", "cloudapp"}, 30.0, 1.0};
  PlatformSpec gcp{"gcp", {"gdrive"}, 20.0, 1.0};
  PlatformSpec ms{"ms", {"onedrive"}, 25.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({amazon, gcp, ms});

  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  auto clusters = ClusterByPlatform(*tree, pt.csp_nodes);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters->size(), 5u);
  // s3, bitcasa, cloudapp share a cluster; gdrive and onedrive are alone.
  EXPECT_EQ((*clusters)[0], (*clusters)[1]);
  EXPECT_EQ((*clusters)[1], (*clusters)[2]);
  EXPECT_NE((*clusters)[0], (*clusters)[3]);
  EXPECT_NE((*clusters)[0], (*clusters)[4]);
  EXPECT_NE((*clusters)[3], (*clusters)[4]);
}

TEST(ClusteringTest, CutAtRootMergesEverything) {
  PlatformSpec a{"a", {"x"}, 30.0, 1.0};
  PlatformSpec b{"b", {"y"}, 20.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({a, b});
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  auto clusters = ClusterByLevel(*tree, pt.csp_nodes, 0);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ((*clusters)[0], (*clusters)[1]);
}

TEST(ClusteringTest, CutAtLeavesSeparatesEverything) {
  PlatformSpec amazon{"amazon", {"s3", "bitcasa"}, 30.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({amazon});
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  auto clusters = ClusterByLevel(*tree, pt.csp_nodes, tree->Height());
  ASSERT_TRUE(clusters.ok());
  EXPECT_NE((*clusters)[0], (*clusters)[1]);
}

TEST(ClusteringTest, PaperTopologyFindsAmazonCluster) {
  // The Figure 3 scenario: the five asterisked providers land in one
  // cluster; the other fifteen do not share it.
  ProviderTopology pt = MakePaperTopology();
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  auto clusters = ClusterByPlatform(*tree, pt.csp_nodes);
  ASSERT_TRUE(clusters.ok());

  std::map<std::string, int> cluster_of;
  for (size_t i = 0; i < pt.csp_names.size(); ++i) {
    cluster_of[pt.csp_names[i]] = (*clusters)[i];
  }
  const int amazon_cluster = cluster_of["Amazon S3"];
  std::set<std::string> amazon_members;
  for (const ProviderInfo& p : PaperProviders()) {
    if (cluster_of[std::string(p.name)] == amazon_cluster) {
      amazon_members.insert(std::string(p.name));
    }
    if (p.on_amazon) {
      EXPECT_EQ(cluster_of[std::string(p.name)], amazon_cluster) << p.name;
    }
  }
  EXPECT_EQ(amazon_members.size(), 5u);
}

TEST(ClusteringTest, UnknownCspNodeRejected) {
  PlatformSpec a{"a", {"x"}, 30.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({a});
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  auto clusters = ClusterByLevel(*tree, {9999}, 1);
  EXPECT_EQ(clusters.status().code(), StatusCode::kNotFound);
}

TEST(ClusteringTest, RenderShowsHierarchy) {
  PlatformSpec amazon{"amazon", {"s3"}, 30.0, 1.0};
  ProviderTopology pt = BuildProviderTopology({amazon});
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  ASSERT_TRUE(tree.ok());
  const std::string render = tree->Render(pt.topology);
  EXPECT_NE(render.find("client"), std::string::npos);
  EXPECT_NE(render.find("gw-amazon"), std::string::npos);
  EXPECT_NE(render.find("s3"), std::string::npos);
}

}  // namespace
}  // namespace cyrus
