// End-to-end acceptance for the observability subsystem: a seeded client
// drives Put/Get/ScrubOnce through MetricsConnector-wrapped fault-injecting
// providers and the exported data must tell one consistent story — per-CSP
// op counts line up across decorator layers, latency percentiles are
// non-empty, retry counts match the injected transient errors, traces carry
// the pipeline's stage timeline, and GET /metrics serves a parseable
// exposition in both formats.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/metrics_connector.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rest/http.h"
#include "src/rest/json.h"
#include "src/rest/rest_server.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 4;

// A client over kNumCsps simulated stores, each stacked as
// MetricsConnector(FaultInjectingConnector(SimulatedCsp)): the metrics
// layer sits outside the fault layer so every injected error is observed
// exactly like a real provider error. All instrumentation records into the
// private `registry`/`traces` for isolated absolute assertions.
struct ObservedCloud {
  obs::MetricsRegistry registry;  // outlives the client (declared first)
  obs::TraceCollector traces{16};
  std::vector<std::shared_ptr<SimulatedCsp>> stores;
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;

  explicit ObservedCloud(double transient_prob = 0.0) {
    CyrusConfig config;
    config.client_id = "obs-device";
    config.key_string = "obs e2e key";
    config.t = 2;
    config.epsilon = 1e-4;
    config.default_failure_prob = 0.01;
    config.chunker = ChunkerOptions::ForTesting();
    config.cluster_aware = false;
    config.transfer_concurrency = 1;  // deterministic fault schedule
    config.transfer_retry.max_attempts = 8;
    config.metrics = &registry;
    config.traces = &traces;
    auto created = CyrusClient::Create(std::move(config));
    EXPECT_TRUE(created.ok()) << created.status();
    client = std::move(created).value();

    for (int i = 0; i < kNumCsps; ++i) {
      SimulatedCspOptions o;
      o.id = StrCat("csp", i);
      o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
      stores.push_back(std::make_shared<SimulatedCsp>(o));
      FaultInjectionOptions fo;
      fo.seed = 90 + static_cast<uint64_t>(i);
      fo.metrics = &registry;
      fo.transient_error_prob = transient_prob;
      faults.push_back(
          std::make_shared<FaultInjectingConnector>(stores.back(), fo));
      auto metered = std::make_shared<MetricsConnector>(faults.back(), &registry);
      CspProfile profile;
      profile.rtt_ms = 50 + 10.0 * i;
      profile.download_bytes_per_sec = 4e6;
      profile.upload_bytes_per_sec = 2e6;
      auto added = client->AddCsp(metered, profile, Credentials{"token"});
      EXPECT_TRUE(added.ok()) << added.status();
    }
  }

  uint64_t OpCount(int csp, const char* op, const char* result) {
    return registry
        .GetCounter("cyrus_csp_ops_total",
                    {{"csp", StrCat("csp", csp)}, {"op", op}, {"result", result}})
        ->value();
  }

  // Data-path calls seen by the metrics layer for one CSP (Authenticate is
  // excluded: the fault injector's call counter exempts it too).
  uint64_t DataPathOps(int csp) {
    uint64_t total = 0;
    for (const char* op : {"list", "upload", "download", "delete"}) {
      total += OpCount(csp, op, "ok") + OpCount(csp, op, "error");
    }
    return total;
  }
};

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(ObsEndToEndTest, PutGetScrubExportAConsistentStory) {
  ObservedCloud cloud;
  constexpr int kFiles = 6;
  std::vector<Bytes> contents;
  for (int i = 0; i < kFiles; ++i) {
    contents.push_back(RandomContent(20 * 1024, 500 + i));
    auto put = cloud.client->Put(StrCat("file-", i), contents.back());
    ASSERT_TRUE(put.ok()) << put.status();
  }
  for (int i = 0; i < kFiles; ++i) {
    auto get = cloud.client->Get(StrCat("file-", i));
    ASSERT_TRUE(get.ok()) << get.status();
    EXPECT_EQ(get->content, contents[i]);
  }

  // Silent data loss on one provider, then a scrub pass heals it.
  auto destroyed = cloud.faults[2]->DestroyRandomObjects(1.0);
  ASSERT_TRUE(destroyed.ok());
  EXPECT_GT(*destroyed, 0u);
  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->stats.chunks_repaired, 0u);

  // Pipeline counters match what the run actually did.
  EXPECT_EQ(cloud.registry.GetCounter("cyrus_client_puts_total")->value(),
            static_cast<uint64_t>(kFiles));
  EXPECT_EQ(cloud.registry.GetCounter("cyrus_client_gets_total")->value(),
            static_cast<uint64_t>(kFiles));
  EXPECT_EQ(cloud.registry.GetCounter("cyrus_scrub_passes_total")->value(), 1u);
  EXPECT_EQ(cloud.registry.GetCounter("cyrus_scrub_chunks_repaired_total")->value(),
            report->stats.chunks_repaired);
  EXPECT_EQ(cloud.registry.GetCounter("cyrus_fault_objects_destroyed_total",
                                      {{"csp", "csp2"}})
                ->value(),
            *destroyed);
  EXPECT_GT(cloud.registry
                .GetCounter("cyrus_transfer_requests_total",
                            {{"kind", "PUT"}, {"result", "ok"}})
                ->value(),
            0u);

  // Cross-layer consistency: the metrics decorator and the fault injector
  // wrap the same call stream, so their per-CSP counts must agree exactly.
  for (int i = 0; i < kNumCsps; ++i) {
    EXPECT_EQ(cloud.DataPathOps(i), cloud.faults[i]->counters().calls)
        << "csp" << i;
    EXPECT_GT(cloud.OpCount(i, "upload", "ok"), 0u) << "csp" << i;
  }

  // Latency percentiles are non-empty for every series that recorded.
  size_t histograms_seen = 0;
  for (const obs::MetricSnapshot& m : cloud.registry.Snapshot().metrics) {
    if (m.kind != obs::InstrumentKind::kHistogram || m.histogram.count == 0) {
      continue;
    }
    ++histograms_seen;
    EXPECT_GT(m.histogram.Percentile(50), 0.0) << m.name;
    EXPECT_GE(m.histogram.Percentile(99), m.histogram.Percentile(50)) << m.name;
  }
  EXPECT_GT(histograms_seen, 0u);
  EXPECT_EQ(cloud.registry.GetHistogram("cyrus_client_put_latency_ms")
                ->Snapshot()
                .count,
            static_cast<uint64_t>(kFiles));

  // Traces carry the stage timeline of each pipeline.
  obs::Trace trace;
  ASSERT_TRUE(cloud.traces.Latest("Put", &trace));
  for (const char* stage : {"chunking", "encode", "place", "upload", "publish_meta"}) {
    EXPECT_NE(trace.FindSpan(stage), nullptr) << stage;
  }
  ASSERT_TRUE(cloud.traces.Latest("Get", &trace));
  for (const char* stage : {"sync_meta", "select", "gather", "assemble"}) {
    EXPECT_NE(trace.FindSpan(stage), nullptr) << stage;
  }
  ASSERT_TRUE(cloud.traces.Latest("ScrubOnce", &trace));
  for (const char* stage : {"probe", "scan", "repair"}) {
    EXPECT_NE(trace.FindSpan(stage), nullptr) << stage;
  }
}

TEST(ObsEndToEndTest, RetryCountMatchesInjectedTransientErrors) {
  // Retries record into the process-wide default registry (they fire below
  // the layer that knows about per-client registries), so assert on deltas.
  obs::Counter* retry_attempts =
      obs::MetricsRegistry::Default().GetCounter("cyrus_retry_attempts_total");
  const uint64_t retries_before = retry_attempts->value();

  ObservedCloud cloud(/*transient_prob=*/0.15);
  constexpr int kFiles = 4;
  std::vector<Bytes> contents;
  for (int i = 0; i < kFiles; ++i) {
    contents.push_back(RandomContent(16 * 1024, 700 + i));
    auto put = cloud.client->Put(StrCat("flaky-", i), contents.back());
    ASSERT_TRUE(put.ok()) << put.status();
  }
  for (int i = 0; i < kFiles; ++i) {
    auto get = cloud.client->Get(StrCat("flaky-", i));
    ASSERT_TRUE(get.ok()) << get.status();
    EXPECT_EQ(get->content, contents[i]);
  }
  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();

  // Every injected transient error is a retryable kUnavailable inside a
  // RetryWithBackoff loop whose budget (8 attempts) the seeded 15% fault
  // rate never exhausts, so retries == injected transient errors, exactly.
  uint64_t injected = 0;
  for (const auto& fault : cloud.faults) {
    injected += fault->counters().transient_errors;
    EXPECT_EQ(fault->counters().outage_errors, 0u);
  }
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(retry_attempts->value() - retries_before, injected);

  // The error series the metrics decorator files must agree with the
  // injector: every injected failure surfaced as unavailable.
  uint64_t observed_unavailable = 0;
  for (int i = 0; i < kNumCsps; ++i) {
    for (const char* op : {"list", "upload", "download", "delete"}) {
      observed_unavailable +=
          cloud.registry
              .GetCounter("cyrus_csp_errors_total", {{"csp", StrCat("csp", i)},
                                                     {"op", op},
                                                     {"code", "unavailable"}})
              ->value();
    }
  }
  EXPECT_EQ(observed_unavailable, injected);
}

TEST(ObsEndToEndTest, MetricsEndpointServesBothFormats) {
  ObservedCloud cloud;
  auto put = cloud.client->Put("scraped", RandomContent(8 * 1024, 11));
  ASSERT_TRUE(put.ok()) << put.status();

  RestVendorOptions options;
  options.id = "obs-vendor";
  options.metrics = &cloud.registry;
  RestVendorServer server(options);

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = "/metrics";
  HttpResponse text = server.Handle(request);
  EXPECT_EQ(text.status, 200);
  const std::string body = ToString(text.body);
  EXPECT_NE(body.find("# TYPE cyrus_csp_ops_total counter"), std::string::npos);
  EXPECT_NE(body.find("cyrus_csp_op_latency_ms_bucket"), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);

  request.query["format"] = "json";
  HttpResponse json = server.Handle(request);
  EXPECT_EQ(json.status, 200);
  auto parsed = JsonValue::Parse(ToString(json.body));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  bool found_ops = false;
  for (const JsonValue& metric : (*parsed)["metrics"].AsArray()) {
    if (metric["name"].AsString() != "cyrus_csp_ops_total" ||
        metric["labels"]["op"].AsString() != "upload" ||
        metric["labels"]["result"].AsString() != "ok") {
      continue;
    }
    found_ops = true;
    // The JSON view must agree with the live registry, label for label.
    const std::string csp = metric["labels"]["csp"].AsString();
    EXPECT_EQ(static_cast<uint64_t>(metric["value"].AsNumber()),
              cloud.registry
                  .GetCounter("cyrus_csp_ops_total",
                              {{"csp", csp}, {"op", "upload"}, {"result", "ok"}})
                  ->value());
  }
  EXPECT_TRUE(found_ops);

  // The endpoint answers even while the vendor simulates an outage, and
  // stays GET-only.
  server.set_available(false);
  EXPECT_EQ(server.Handle(request).status, 200);
  request.method = HttpMethod::kPost;
  EXPECT_EQ(server.Handle(request).status, 405);
}

}  // namespace
}  // namespace cyrus
