// Tests for the observability subsystem: histogram bucket/percentile math,
// registry semantics (find-or-create, label canonicalization, kind
// mismatch), concurrent recording under the thread pool, trace span
// nesting, exposition goldens (Prometheus text + JSON), and the
// instrumented substrates (thread-pool gauges, retry counters, the
// fault injector's registry-backed counters, MetricsConnector).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/metrics_connector.h"
#include "src/cloud/simulated_csp.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rest/json.h"
#include "src/util/bytes.h"
#include "src/util/retry.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

// --- Histogram math ---

TEST(HistogramTest, BucketAssignmentUsesUpperEdges) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.5);    // bucket 1
  histogram.Observe(2.0);    // bucket 1 (upper edge inclusive)
  histogram.Observe(3.0);    // bucket 2
  histogram.Observe(100.0);  // overflow

  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 3u);
  EXPECT_EQ(snapshot.counts[0], 1u);
  EXPECT_EQ(snapshot.counts[1], 2u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.overflow, 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 107.0);
}

TEST(HistogramTest, BoundsAreSortedAndDeduped) {
  obs::Histogram histogram({4.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(histogram.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  obs::Histogram histogram({10.0});
  histogram.Observe(4.0);
  histogram.Observe(6.0);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  // Two observations in (0, 10]: the median lands halfway up the bucket.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(50), snapshot.Quantile(0.5));
}

TEST(HistogramTest, QuantileEmptyAndOverflow) {
  obs::Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Quantile(0.5), 0.0);  // empty

  histogram.Observe(50.0);  // overflow only
  // The histogram cannot resolve beyond its last finite edge.
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Quantile(0.5), 2.0);
}

TEST(HistogramTest, ResetForTestZeroesValues) {
  obs::Histogram histogram({1.0});
  histogram.Observe(0.5);
  histogram.Observe(7.0);
  histogram.ResetForTest();
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.overflow, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
}

TEST(HistogramTest, ExponentialBucketsGrowGeometrically) {
  EXPECT_EQ(obs::ExponentialBuckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double>& defaults = obs::DefaultLatencyBucketsMs();
  ASSERT_EQ(defaults.size(), 13u);
  EXPECT_DOUBLE_EQ(defaults.front(), 0.01);
  for (size_t i = 1; i < defaults.size(); ++i) {
    EXPECT_GT(defaults[i], defaults[i - 1]);
  }
}

// --- Registry semantics ---

TEST(RegistryTest, FindOrCreateIsLabelOrderInsensitive) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("ops_total", {{"csp", "c0"}, {"op", "get"}});
  obs::Counter* b = registry.GetCounter("ops_total", {{"op", "get"}, {"csp", "c0"}});
  EXPECT_EQ(a, b);
  obs::Counter* other = registry.GetCounter("ops_total", {{"op", "put"}, {"csp", "c0"}});
  EXPECT_NE(a, other);
}

TEST(RegistryTest, KindMismatchReturnsDetachedDummy) {
  obs::MetricsRegistry registry;
  registry.GetCounter("m", {}, "help")->Increment();
  // Reusing the name as a gauge must not crash and must not disturb the
  // registered counter; the dummy is never exported.
  registry.GetGauge("m")->Set(42.0);
  registry.GetHistogram("m")->Observe(1.0);

  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].kind, obs::InstrumentKind::kCounter);
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 1.0);
}

TEST(RegistryTest, SnapshotCarriesHelpAndSortedLabels) {
  obs::MetricsRegistry registry;
  registry.GetCounter("x_total", {{"op", "get"}, {"csp", "c0"}}, "X events")
      ->Increment(2);
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].help, "X events");
  ASSERT_EQ(snapshot.metrics[0].labels.size(), 2u);
  EXPECT_EQ(snapshot.metrics[0].labels[0].first, "csp");  // canonical order
  EXPECT_EQ(snapshot.metrics[0].labels[1].first, "op");
}

TEST(RegistryTest, ResetForTestPreservesInstrumentIdentity) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c_total");
  counter->Increment(5);
  registry.ResetForTest();
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();  // cached pointer still live
  EXPECT_EQ(registry.GetCounter("c_total")->value(), 1u);
}

TEST(RegistryTest, ConcurrentRecordingUnderThreadPool) {
  obs::MetricsRegistry registry;
  constexpr size_t kTasks = 64;
  constexpr size_t kIncrementsPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t i) {
    // Re-resolving exercises the registration path racing with recording.
    obs::Counter* counter = registry.GetCounter("concurrent_total");
    obs::Histogram* histogram = registry.GetHistogram("concurrent_ms", {}, {1.0, 8.0});
    for (size_t j = 0; j < kIncrementsPerTask; ++j) {
      counter->Increment();
      histogram->Observe(static_cast<double>(i % 16));
    }
  });
  EXPECT_EQ(registry.GetCounter("concurrent_total")->value(),
            kTasks * kIncrementsPerTask);
  EXPECT_EQ(registry.GetHistogram("concurrent_ms")->Snapshot().count,
            kTasks * kIncrementsPerTask);
}

// --- Instrumented substrates (process-wide default registry) ---

TEST(ThreadPoolMetricsTest, GaugesSettleAndTasksAccumulate) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* tasks = registry.GetCounter("cyrus_threadpool_tasks_total");
  obs::Gauge* depth = registry.GetGauge("cyrus_threadpool_queue_depth");
  obs::Gauge* active = registry.GetGauge("cyrus_threadpool_active_workers");
  const uint64_t tasks_before = tasks->value();
  const double depth_before = depth->value();
  const double active_before = active->value();

  {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 32);
  }  // joined: every submit/run has been mirrored into the gauges

  EXPECT_EQ(tasks->value(), tasks_before + 32);
  EXPECT_DOUBLE_EQ(depth->value(), depth_before);
  EXPECT_DOUBLE_EQ(active->value(), active_before);
}

TEST(RetryMetricsTest, RecordsAttemptsAndBackoff) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* attempts = registry.GetCounter("cyrus_retry_attempts_total");
  obs::Gauge* backoff = registry.GetGauge("cyrus_retry_backoff_ms_total");
  const uint64_t attempts_before = attempts->value();
  const double backoff_before = backoff->value();

  RetryOptions options;
  options.max_attempts = 5;
  int calls = 0;
  Status status = RetryWithBackoff(options, [&]() -> Status {
    return ++calls < 3 ? UnavailableError("flaky") : OkStatus();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts->value(), attempts_before + 2);  // one per re-attempt
  EXPECT_GT(backoff->value(), backoff_before);
}

TEST(FaultInjectionMetricsTest, CountersFlowThroughRegistry) {
  obs::MetricsRegistry registry;
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"sim0"});
  FaultInjectionOptions options;
  options.metrics = &registry;
  options.transient_error_prob = 1.0;
  FaultInjectingConnector fault(store, options);

  ASSERT_TRUE(fault.Authenticate(Credentials{"token"}).ok());  // exempt
  EXPECT_EQ(fault.Upload("obj", ToBytes("x")).code(), StatusCode::kUnavailable);

  EXPECT_EQ(fault.counters().calls, 1u);
  EXPECT_EQ(fault.counters().transient_errors, 1u);
  obs::Counter* series = registry.GetCounter(
      "cyrus_fault_errors_total", {{"csp", "sim0"}, {"fault", "transient"}});
  EXPECT_EQ(series->value(), 1u);

  // ResetCounters rebases the per-instance view; the registry series keeps
  // its process-lifetime total.
  fault.ResetCounters();
  EXPECT_EQ(fault.counters().transient_errors, 0u);
  EXPECT_EQ(series->value(), 1u);
}

TEST(MetricsConnectorTest, RecordsPerOperationOutcomes) {
  obs::MetricsRegistry registry;
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"simA"});
  MetricsConnector connector(store, &registry);

  ASSERT_TRUE(connector.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(connector.Upload("a", ToBytes("hello")).ok());
  auto data = connector.Download("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(connector.Download("missing").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(connector.List("").ok());
  ASSERT_TRUE(connector.Delete("a").ok());

  auto count = [&](const char* op, const char* result) {
    return registry
        .GetCounter("cyrus_csp_ops_total",
                    {{"csp", "simA"}, {"op", op}, {"result", result}})
        ->value();
  };
  EXPECT_EQ(count("authenticate", "ok"), 1u);
  EXPECT_EQ(count("upload", "ok"), 1u);
  EXPECT_EQ(count("download", "ok"), 1u);
  EXPECT_EQ(count("download", "error"), 1u);
  EXPECT_EQ(count("list", "ok"), 1u);
  EXPECT_EQ(count("delete", "ok"), 1u);

  EXPECT_EQ(registry.GetCounter("cyrus_csp_bytes_total",
                                {{"csp", "simA"}, {"op", "upload"}})
                ->value(),
            5u);
  EXPECT_EQ(registry.GetCounter("cyrus_csp_bytes_total",
                                {{"csp", "simA"}, {"op", "download"}})
                ->value(),
            5u);
  EXPECT_EQ(registry
                .GetCounter("cyrus_csp_errors_total", {{"csp", "simA"},
                                                       {"op", "download"},
                                                       {"code", "not_found"}})
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetHistogram("cyrus_csp_op_latency_ms",
                              {{"csp", "simA"}, {"op", "upload"}})
                ->Snapshot()
                .count,
            1u);
}

// --- Trace spans ---

TEST(TraceTest, SpanNestingDepthsAndBytes) {
  obs::TraceCollector collector(8);
  {
    obs::TraceBuilder builder(&collector, "Put", "docs/a.txt");
    EXPECT_TRUE(builder.enabled());
    obs::ScopedSpan outer = builder.Span("outer");
    {
      obs::ScopedSpan inner = builder.Span("inner");
      inner.AddBytes(7);
      inner.AddBytes(3);
    }
    outer.End();
    obs::ScopedSpan tail = builder.Span("tail");
  }

  obs::Trace trace;
  ASSERT_TRUE(collector.Latest("Put", &trace));
  EXPECT_EQ(trace.detail, "docs/a.txt");
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].name, "outer");
  EXPECT_EQ(trace.spans[0].depth, 0u);
  EXPECT_EQ(trace.spans[1].name, "inner");
  EXPECT_EQ(trace.spans[1].depth, 1u);  // opened while "outer" was open
  EXPECT_EQ(trace.spans[1].bytes, 10u);
  EXPECT_EQ(trace.spans[2].name, "tail");
  EXPECT_EQ(trace.spans[2].depth, 0u);  // "outer" had ended
  EXPECT_GE(trace.spans[1].start_ms, trace.spans[0].start_ms);
  EXPECT_GE(trace.total_ms, 0.0);

  const obs::TraceSpan* found = trace.FindSpan("inner");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->bytes, 10u);
  EXPECT_EQ(trace.FindSpan("absent"), nullptr);
}

TEST(TraceTest, LeakedOpenSpansCloseAtTraceEnd) {
  obs::TraceCollector collector;
  {
    obs::TraceBuilder builder(&collector, "Get", "");
    obs::ScopedSpan span = builder.Span("never_ended");
    // Moved-from handles must not double-close.
    obs::ScopedSpan moved = std::move(span);
    (void)moved;
  }
  obs::Trace trace;
  ASSERT_TRUE(collector.Latest("Get", &trace));
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_GE(trace.spans[0].duration_ms, 0.0);
  EXPECT_LE(trace.spans[0].duration_ms, trace.total_ms + 1e-9);
}

TEST(TraceTest, NullCollectorIsNoOp) {
  obs::TraceBuilder builder(nullptr, "Put", "x");
  EXPECT_FALSE(builder.enabled());
  obs::ScopedSpan span = builder.Span("stage");
  span.AddBytes(5);
  span.End();  // must not crash
}

TEST(TraceTest, RingEvictsOldestAndLatestFindsNewest) {
  obs::TraceCollector collector(2);
  for (int i = 0; i < 3; ++i) {
    obs::Trace trace;
    trace.op = "Put";
    trace.detail = "file-" + std::to_string(i);
    collector.Record(std::move(trace));
  }
  EXPECT_EQ(collector.total_recorded(), 3u);
  const std::vector<obs::Trace> snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // capacity bound; oldest evicted
  EXPECT_EQ(snapshot.front().detail, "file-1");

  obs::Trace latest;
  ASSERT_TRUE(collector.Latest("Put", &latest));
  EXPECT_EQ(latest.detail, "file-2");
  EXPECT_FALSE(collector.Latest("ScrubOnce", &latest));

  collector.Clear();
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(TraceTest, RenderTraceTextIndentsByDepth) {
  obs::Trace trace;
  trace.op = "Put";
  trace.detail = "a.bin";
  trace.total_ms = 12.0;
  trace.spans.push_back({"chunking", 0, 0.0, 4.0, 0});
  trace.spans.push_back({"encode", 1, 1.0, 2.0, 4096});
  const std::string text = obs::RenderTraceText(trace);
  EXPECT_NE(text.find("Put a.bin (12 ms)"), std::string::npos);
  EXPECT_NE(text.find("\n  chunking: 4 ms"), std::string::npos);
  EXPECT_NE(text.find("\n    encode: 2 ms (4096 B)"), std::string::npos);
}

// --- Exposition goldens ---

// A small deterministic registry shared by both golden tests.
void FillGoldenRegistry(obs::MetricsRegistry& registry) {
  registry.GetCounter("requests_total", {{"op", "get"}}, "Total requests.")
      ->Increment(3);
  registry.GetGauge("queue_depth", {}, "Tasks waiting.")->Set(2.5);
  obs::Histogram* histogram =
      registry.GetHistogram("latency_ms", {}, {1.0, 2.0, 4.0}, "Observed latency.");
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(3.0);
  histogram->Observe(9.0);
}

TEST(ExportTest, PrometheusTextGolden) {
  obs::MetricsRegistry registry;
  FillGoldenRegistry(registry);
  EXPECT_EQ(obs::RenderPrometheusText(registry),
            "# HELP latency_ms Observed latency.\n"
            "# TYPE latency_ms histogram\n"
            "latency_ms_bucket{le=\"1\"} 1\n"
            "latency_ms_bucket{le=\"2\"} 2\n"
            "latency_ms_bucket{le=\"4\"} 3\n"
            "latency_ms_bucket{le=\"+Inf\"} 4\n"
            "latency_ms_sum 14\n"
            "latency_ms_count 4\n"
            "# HELP queue_depth Tasks waiting.\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 2.5\n"
            "# HELP requests_total Total requests.\n"
            "# TYPE requests_total counter\n"
            "requests_total{op=\"get\"} 3\n");
}

TEST(ExportTest, JsonGoldenAndParsesBack) {
  obs::MetricsRegistry registry;
  FillGoldenRegistry(registry);
  const std::string json = obs::RenderMetricsJson(registry);
  EXPECT_EQ(json,
            "{\"metrics\":["
            "{\"name\":\"latency_ms\",\"type\":\"histogram\",\"labels\":{},"
            "\"count\":4,\"sum\":14,\"p50\":2,\"p95\":4,\"p99\":4,\"buckets\":["
            "{\"le\":1,\"count\":1},{\"le\":2,\"count\":1},{\"le\":4,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":1}]},"
            "{\"name\":\"queue_depth\",\"type\":\"gauge\",\"labels\":{},\"value\":2.5},"
            "{\"name\":\"requests_total\",\"type\":\"counter\","
            "\"labels\":{\"op\":\"get\"},\"value\":3}]}");

  // The rest layer's parser must accept the hand-rendered document.
  auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& metrics = (*parsed)["metrics"].AsArray();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0]["name"].AsString(), "latency_ms");
  EXPECT_DOUBLE_EQ(metrics[0]["p50"].AsNumber(), 2.0);
  EXPECT_EQ(metrics[0]["buckets"].AsArray().size(), 4u);
  EXPECT_EQ(metrics[2]["labels"]["op"].AsString(), "get");
}

TEST(ExportTest, EscapesAwkwardLabelValues) {
  obs::MetricsRegistry registry;
  const std::string awkward = "he said \"hi\"\\\n";
  registry.GetCounter("events_total", {{"msg", awkward}})->Increment();

  const std::string text = obs::RenderPrometheusText(registry);
  EXPECT_NE(text.find("msg=\"he said \\\"hi\\\"\\\\\\n\""), std::string::npos);

  auto parsed = JsonValue::Parse(obs::RenderMetricsJson(registry));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)["metrics"].AsArray()[0]["labels"]["msg"].AsString(), awkward);
}

}  // namespace
}  // namespace cyrus
