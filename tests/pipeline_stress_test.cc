// Concurrency stress battery for the pipelined Put/Get engine (ctest label
// `stress`; run it under TSan via -DENABLE_TSAN=ON or scripts/check.sh
// --tsan to certify the pipeline's locking discipline).
//
// Every iteration drives a fresh client whose CSPs sit behind
// FaultInjectingConnector decorators: transient kUnavailable errors force
// the in-place retry and failover re-placement paths to run concurrently
// on pipeline workers, injected latency skews completion order away from
// submission order, and mid-run permanent outages exercise MarkCspFailed
// racing from several workers plus lazy migration on the Get side. All
// randomness is seeded, so any failure reproduces from the iteration
// number alone.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kIterations = 100;
constexpr int kNumCsps = 6;

struct StressCloud {
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
  // Owns the instrument series the fault injectors write, keeping the
  // process-wide default registry clean across 100 iterations.
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

Bytes RandomContent(Rng& rng, size_t size) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

StressCloud MakeStressCloud(uint64_t seed, double transient_error_prob,
                            uint32_t window_chunks = 4) {
  StressCloud cloud;
  cloud.metrics = std::make_unique<obs::MetricsRegistry>();

  CyrusConfig config;
  config.client_id = "stress-device";
  config.key_string = StrCat("stress key ", seed);
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 4;
  config.pipeline_window_chunks = window_chunks;
  config.transfer_retry.seed = seed;
  config.transfer_retry.max_attempts = 6;  // ride out injected transients
  config.metrics = cloud.metrics.get();

  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();

  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("stress-csp", i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    FaultInjectionOptions faults;
    faults.seed = seed * kNumCsps + static_cast<uint64_t>(i);
    faults.metrics = cloud.metrics.get();
    faults.transient_error_prob = transient_error_prob;
    faults.latency_mean_ms = 5.0;        // virtual, for the metrics series
    faults.real_sleep_max_ms = 2.0;      // really scrambles completion order
    auto injector = std::make_shared<FaultInjectingConnector>(
        std::make_shared<SimulatedCsp>(o), faults);
    cloud.faults.push_back(injector);
    CspProfile profile;
    profile.rtt_ms = 50 + 20.0 * i;
    profile.download_bytes_per_sec = (i % 3 == 0) ? 2e6 : 12e6;
    profile.upload_bytes_per_sec = profile.download_bytes_per_sec / 2;
    auto added = cloud.client->AddCsp(injector, profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

void ReviveAll(StressCloud& cloud) {
  for (size_t i = 0; i < cloud.faults.size(); ++i) {
    cloud.faults[i]->set_permanently_down(false);
    (void)cloud.client->MarkCspRecovered(static_cast<int>(i));
  }
}

// A Put may legitimately fail when injected faults shrink the reachable
// CSP set below t mid-flight; what the stress battery asserts is that it
// fails *cleanly* and that every success is durable: the bytes come back
// identical even after an outage forces failover and lazy migration.
TEST(PipelineStressTest, SeededFaultScheduleNeverCorruptsData) {
  int puts_succeeded = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE(StrCat("iteration ", iter));
    const uint64_t seed = 0xC0FFEE00u + static_cast<uint64_t>(iter);
    Rng rng(seed);
    // Sweep the fault intensity across iterations.
    const double error_prob = 0.02 + 0.10 * rng.NextDouble();
    StressCloud cloud = MakeStressCloud(seed, error_prob);

    // Multi-chunk content (ForTesting chunker: ~1 KB average chunks) with
    // a shared prefix between the two files so dedup rides the pipeline.
    const size_t size_a = 4096 + rng.NextBelow(24 * 1024);
    Bytes file_a = RandomContent(rng, size_a);
    Bytes file_b = file_a;
    Bytes tail = RandomContent(rng, 2048 + rng.NextBelow(8 * 1024));
    file_b.insert(file_b.end(), tail.begin(), tail.end());

    auto put_a = cloud.client->Put("stress-a", file_a);
    if (!put_a.ok()) {
      ReviveAll(cloud);
      put_a = cloud.client->Put("stress-a", file_a);
    }
    ASSERT_TRUE(put_a.ok()) << put_a.status();
    auto put_b = cloud.client->Put("stress-b", file_b);
    if (!put_b.ok()) {
      ReviveAll(cloud);
      put_b = cloud.client->Put("stress-b", file_b);
    }
    ASSERT_TRUE(put_b.ok()) << put_b.status();
    ++puts_succeeded;

    // Knock out a random CSP between Put and Get: the gather pipeline must
    // fail over to surviving share locations and lazily migrate the lost
    // ones, with MarkCspFailed racing from concurrent workers.
    const int down = static_cast<int>(rng.NextBelow(kNumCsps));
    cloud.faults[static_cast<size_t>(down)]->set_permanently_down(true);

    auto get_a = cloud.client->Get("stress-a");
    if (!get_a.ok()) {
      // Fault schedule ate too many shares' CSPs this round; with every
      // provider back up the stored shares must still reconstruct.
      ReviveAll(cloud);
      get_a = cloud.client->Get("stress-a");
    }
    ASSERT_TRUE(get_a.ok()) << get_a.status();
    EXPECT_EQ(get_a->content, file_a);

    auto get_b = cloud.client->Get("stress-b");
    if (!get_b.ok()) {
      ReviveAll(cloud);
      get_b = cloud.client->Get("stress-b");
    }
    ASSERT_TRUE(get_b.ok()) << get_b.status();
    EXPECT_EQ(get_b->content, file_b);
  }
  EXPECT_EQ(puts_succeeded, kIterations);
}

// Narrow window + heavy latency skew: completions arrive far out of
// submission order, so ordered delivery and the window bound do real work.
TEST(PipelineStressTest, TinyWindowUnderLatencySkewStaysOrdered) {
  for (int iter = 0; iter < 10; ++iter) {
    SCOPED_TRACE(StrCat("iteration ", iter));
    const uint64_t seed = 0xBEEF00u + static_cast<uint64_t>(iter);
    Rng rng(seed);
    StressCloud cloud = MakeStressCloud(seed, 0.05, /*window_chunks=*/2);
    Bytes content = RandomContent(rng, 32 * 1024);
    auto put = cloud.client->Put("skewed", content);
    if (!put.ok()) {
      ReviveAll(cloud);
      put = cloud.client->Put("skewed", content);
    }
    ASSERT_TRUE(put.ok()) << put.status();
    auto get = cloud.client->Get("skewed");
    if (!get.ok()) {
      ReviveAll(cloud);
      get = cloud.client->Get("skewed");
    }
    ASSERT_TRUE(get.ok()) << get.status();
    EXPECT_EQ(get->content, content);
  }
}

}  // namespace
}  // namespace cyrus
