// Seeded fault-injection soak: a client working over five misbehaving
// providers (transient errors, silent upload loss, injected latency, and
// outages of at most n - t CSPs at a time) must never lose data as long as
// scrub passes run between incidents. Every source of randomness is seeded
// and transfers run sequentially, so one fault schedule replays exactly.
//
// This binary is labeled `soak` in ctest (longer than the unit tests; run
// with `ctest -L soak` or as part of the full suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 5;
constexpr int kRounds = 24;
constexpr int kMaxConcurrentOutages = 2;  // n - t for the config below

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(RepairSoakTest, NoDataLossUnderSeededFaultSchedule) {
  CyrusConfig config;
  config.client_id = "soak-device";
  config.key_string = "soak key material";
  config.t = 2;
  config.epsilon = 1e-4;
  config.default_failure_prob = 0.01;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  // Sequential transfers: the per-connector fault dice are consumed in a
  // deterministic order, so the whole soak replays bit-for-bit.
  config.transfer_concurrency = 1;
  config.transfer_retry.max_attempts = 6;

  auto client_or = CyrusClient::Create(config);
  ASSERT_TRUE(client_or.ok()) << client_or.status();
  std::unique_ptr<CyrusClient> client = std::move(client_or).value();

  std::vector<std::shared_ptr<SimulatedCsp>> stores;
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = "csp" + std::to_string(i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    stores.push_back(std::make_shared<SimulatedCsp>(o));
    FaultInjectionOptions fo;
    fo.seed = 2024 + static_cast<uint64_t>(i);
    fo.transient_error_prob = 0.05;
    fo.upload_loss_prob = 0.01;
    fo.latency_mean_ms = 5.0;
    faults.push_back(std::make_shared<FaultInjectingConnector>(stores.back(), fo));
    auto added = client->AddCsp(faults.back(), CspProfile{}, Credentials{"token"});
    ASSERT_TRUE(added.ok()) << added.status();
  }

  // Repeated passes converge even when a repair's own upload is silently
  // lost (the next probe sees the object missing and rebuilds again).
  auto scrub_until_clean = [&client]() {
    for (int pass = 0; pass < 5; ++pass) {
      auto report = client->ScrubOnce();
      ASSERT_TRUE(report.ok()) << report.status();
      if (report->stats.chunks_degraded == 0) {
        return;
      }
    }
    for (const ChunkHealth& chunk : client->ScrubScan()) {
      ASSERT_FALSE(chunk.degraded()) << "scrub failed to converge";
    }
  };

  Rng rng(42);
  std::map<std::string, Bytes> expected;
  std::vector<int> down;

  for (int round = 0; round < kRounds; ++round) {
    // A few foreground operations under whatever faults are active.
    for (int op = 0; op < 3; ++op) {
      const std::string name = "file" + std::to_string(rng.Next() % 8) + ".bin";
      if (expected.count(name) == 0 || rng.NextBool(0.5)) {
        const size_t size = 2048 + static_cast<size_t>(rng.Next() % (20 * 1024));
        Bytes content = RandomContent(size, rng.Next());
        auto put = client->Put(name, content);
        ASSERT_TRUE(put.ok()) << "round " << round << ": " << put.status();
        expected[name] = std::move(content);
      } else {
        auto get = client->Get(name);
        if (!get.ok()) {
          std::string diag;
          for (const Sha1Digest& id : client->chunk_table().AllChunkIds()) {
            const ChunkEntry* e = client->chunk_table().Find(id);
            diag += "\nchunk " + id.ToHex() + " n=" + std::to_string(e->n) + " shares:";
            for (const ChunkShare& s : e->shares) {
              auto st = client->registry().state(s.csp);
              diag += " (csp" + std::to_string(s.csp) + ",idx" +
                      std::to_string(s.share_index) + ",state" +
                      std::to_string(st.ok() ? static_cast<int>(*st) : -1) + ")";
            }
          }
          ASSERT_TRUE(get.ok()) << "round " << round << ": " << get.status() << diag;
        }
        EXPECT_EQ(get->content, expected[name]) << "round " << round << " " << name;
      }
    }

    if (down.empty()) {
      // Scrub back to full redundancy, then (sometimes) start an incident
      // taking down at most n - t providers at once.
      scrub_until_clean();
      if (rng.NextBool(0.6)) {
        const int outages = 1 + static_cast<int>(rng.Next() % kMaxConcurrentOutages);
        while (static_cast<int>(down.size()) < outages) {
          const int csp = static_cast<int>(rng.Next() % kNumCsps);
          if (std::find(down.begin(), down.end(), csp) == down.end()) {
            down.push_back(csp);
            faults[csp]->set_permanently_down(true);
            ASSERT_TRUE(client->MarkCspFailed(csp).ok());
          }
        }
      }
    } else {
      // The incident ends: providers return (their stored objects intact),
      // get re-verified, and the next scrub restores full redundancy.
      for (int csp : down) {
        faults[csp]->set_permanently_down(false);
        ASSERT_TRUE(client->MarkCspRecovered(csp).ok());
      }
      EXPECT_EQ(client->csps_pending_reprobe().size(), down.size());
      down.clear();
      scrub_until_clean();
      EXPECT_TRUE(client->csps_pending_reprobe().empty());
    }
  }

  // End of the soak: revive everything and verify every byte ever written.
  for (int csp : down) {
    faults[csp]->set_permanently_down(false);
    ASSERT_TRUE(client->MarkCspRecovered(csp).ok());
  }
  down.clear();
  scrub_until_clean();
  for (const auto& [name, content] : expected) {
    auto get = client->Get(name);
    ASSERT_TRUE(get.ok()) << name << ": " << get.status();
    EXPECT_EQ(get->content, content) << name;
  }

  // The schedule actually exercised the fault paths.
  uint64_t transients = 0;
  uint64_t lost_uploads = 0;
  for (const auto& fault : faults) {
    transients += fault->counters().transient_errors;
    lost_uploads += fault->counters().uploads_lost;
  }
  EXPECT_GT(transients, 0u);
  EXPECT_GT(lost_uploads, 0u);
  const RepairStats& stats = client->repair_stats();
  EXPECT_GT(stats.scrub_passes, 0u);
  EXPECT_GT(stats.chunks_repaired, 0u);
  EXPECT_GT(stats.shares_rebuilt, 0u);
}

}  // namespace
}  // namespace cyrus
