// Tests of the proactive scrub & repair engine and the fault-injecting
// connector decorator it is built to survive.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/meta/metadata.h"
#include "src/util/retry.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 5;

CyrusConfig SmallConfig(std::string client_id = "device-1") {
  CyrusConfig config;
  config.client_id = std::move(client_id);
  config.key_string = "test key material";
  config.t = 2;
  config.epsilon = 1e-4;
  config.default_failure_prob = 0.01;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  return config;
}

// A client over kNumCsps simulated stores, each behind a fault-injecting
// wrapper (faults disabled unless the test turns a knob).
struct RepairCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> stores;
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
};

RepairCloud MakeCloud(CyrusConfig config = SmallConfig(),
                      FaultInjectionOptions fault_options = {}) {
  RepairCloud cloud;
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  cloud.client = std::move(client).value();
  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = "csp" + std::to_string(i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    cloud.stores.push_back(std::make_shared<SimulatedCsp>(o));
    FaultInjectionOptions per_csp = fault_options;
    per_csp.seed = fault_options.seed + static_cast<uint64_t>(i);
    cloud.faults.push_back(std::make_shared<FaultInjectingConnector>(
        cloud.stores.back(), per_csp));
    CspProfile profile;
    profile.rtt_ms = 100 + 10.0 * i;
    profile.download_bytes_per_sec = (i < 2) ? 15e6 : 2e6;
    profile.upload_bytes_per_sec = profile.download_bytes_per_sec / 2;
    auto added = cloud.client->AddCsp(cloud.faults.back(), profile, Credentials{"token"});
    EXPECT_TRUE(added.ok()) << added.status();
  }
  return cloud;
}

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

// ---------------------------------------------------------------------------
// FaultInjectingConnector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ForwardsToInnerStoreWhenHealthy) {
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, FaultInjectionOptions{});
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  const Bytes payload{1, 2, 3};
  ASSERT_TRUE(conn.Upload("obj", payload).ok());
  auto back = conn.Download("obj");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payload);
  auto listing = conn.List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  ASSERT_TRUE(conn.Delete("obj").ok());
  EXPECT_EQ(conn.counters().calls, 4u);
  EXPECT_EQ(conn.counters().transient_errors, 0u);
  EXPECT_EQ(store->object_count(), 0u);
}

TEST(FaultInjectorTest, PermanentOutageFailsEverythingUntilRevived) {
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, FaultInjectionOptions{});
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(conn.Upload("obj", Bytes{1}).ok());

  conn.set_permanently_down(true);
  EXPECT_TRUE(conn.permanently_down());
  EXPECT_EQ(conn.Upload("x", Bytes{2}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(conn.Download("obj").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(conn.List("").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(conn.Delete("obj").code(), StatusCode::kUnavailable);
  EXPECT_EQ(conn.Authenticate(Credentials{"token"}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(conn.counters().outage_errors, 5u);

  conn.set_permanently_down(false);
  auto back = conn.Download("obj");
  ASSERT_TRUE(back.ok()) << back.status();  // the stored object survived
  EXPECT_EQ(*back, Bytes{1});
}

TEST(FaultInjectorTest, TransientErrorScheduleIsSeedDeterministic) {
  FaultInjectionOptions options;
  options.transient_error_prob = 0.5;
  options.seed = 7;
  auto run = [&options]() {
    auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
    FaultInjectingConnector conn(store, options);
    EXPECT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(conn.List("").ok());
    }
    return outcomes;
  };
  const std::vector<bool> first = run();
  EXPECT_EQ(first, run());
  // Roughly half should fail; exact count is pinned by the seed.
  size_t failures = 0;
  for (bool ok : first) {
    failures += ok ? 0 : 1;
  }
  EXPECT_GT(failures, 16u);
  EXPECT_LT(failures, 48u);
}

TEST(FaultInjectorTest, SilentUploadLossReportsSuccessButStoresNothing) {
  FaultInjectionOptions options;
  options.upload_loss_prob = 1.0;
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, options);
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(conn.Upload("obj", Bytes{1, 2}).ok());  // the lie
  EXPECT_EQ(store->object_count(), 0u);
  EXPECT_EQ(conn.Download("obj").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(conn.counters().uploads_lost, 1u);
}

TEST(FaultInjectorTest, DestroyObjectIsSilent) {
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, FaultInjectionOptions{});
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  ASSERT_TRUE(conn.Upload("a", Bytes{1}).ok());
  ASSERT_TRUE(conn.Upload("b", Bytes{2}).ok());
  ASSERT_TRUE(conn.DestroyObject("a").ok());
  EXPECT_EQ(conn.DestroyObject("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(store->object_count(), 1u);
  EXPECT_EQ(conn.counters().objects_destroyed, 1u);

  auto destroyed = conn.DestroyRandomObjects(1.0);
  ASSERT_TRUE(destroyed.ok());
  EXPECT_EQ(*destroyed, 1u);
  EXPECT_EQ(store->object_count(), 0u);
}

TEST(FaultInjectorTest, LatencyAccumulatesOnTheVirtualClock) {
  FaultInjectionOptions options;
  options.latency_mean_ms = 25.0;
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, options);
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(conn.Upload("obj" + std::to_string(i), Bytes{1}).ok());
  }
  const double total = conn.counters().injected_latency_ms;
  EXPECT_GT(total, 100 * 25.0 * 0.3);  // exponential draws, loosely bounded
  EXPECT_LT(total, 100 * 25.0 * 3.0);
}

TEST(FaultInjectorTest, RetryWithBackoffMasksTransientErrors) {
  FaultInjectionOptions options;
  options.transient_error_prob = 0.4;
  options.seed = 11;
  auto store = std::make_shared<SimulatedCsp>(SimulatedCspOptions{"s"});
  FaultInjectingConnector conn(store, options);
  ASSERT_TRUE(conn.Authenticate(Credentials{"token"}).ok());
  RetryOptions retry;
  retry.max_attempts = 16;  // (0.4)^16 ~ 4e-7: effectively never exhausted
  for (int i = 0; i < 50; ++i) {
    const std::string name = "obj" + std::to_string(i);
    ASSERT_TRUE(RetryWithBackoff(retry, [&] { return conn.Upload(name, Bytes{9}); }).ok());
    auto back = RetryWithBackoff(retry, [&] { return conn.Download(name); });
    ASSERT_TRUE(back.ok()) << back.status();
  }
  EXPECT_GT(conn.counters().transient_errors, 0u);
  EXPECT_EQ(store->object_count(), 50u);
}

// ---------------------------------------------------------------------------
// RepairEngine through CyrusClient
// ---------------------------------------------------------------------------

TEST(RepairTest, ScanOfHealthyStoreReportsNothingDegraded) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(24 * 1024, 1)).ok());
  ASSERT_TRUE(cloud.client->Put("b.bin", RandomContent(8 * 1024, 2)).ok());

  std::vector<ChunkHealth> health = cloud.client->ScrubScan();
  ASSERT_EQ(health.size(), cloud.client->chunk_table().size());
  for (const ChunkHealth& chunk : health) {
    EXPECT_FALSE(chunk.degraded());
    EXPECT_EQ(chunk.dead_locations, 0u);
    EXPECT_GE(chunk.margin(), 0);
  }
  const RepairStats& stats = cloud.client->repair_stats();
  EXPECT_EQ(stats.chunks_degraded, 0u);
  EXPECT_EQ(stats.probe_failures, 0u);
}

TEST(RepairTest, ScrubRestoresRedundancyAfterCspFailures) {
  RepairCloud cloud = MakeCloud();
  const Bytes content_a = RandomContent(30 * 1024, 3);
  const Bytes content_b = RandomContent(12 * 1024, 4);
  auto put = cloud.client->Put("a.bin", content_a);
  ASSERT_TRUE(put.ok()) << put.status();
  ASSERT_TRUE(cloud.client->Put("b.bin", content_b).ok());
  ASSERT_GT(put->n, cloud.client->config().t);

  // Kill n - t providers: the worst failure the coding must survive.
  const uint32_t losses = put->n - cloud.client->config().t;
  ASSERT_LE(losses, 2u);
  for (uint32_t i = 0; i < losses; ++i) {
    cloud.stores[kNumCsps - 1 - i]->set_available(false);
  }

  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  // The probe discovers the dead CSPs by itself (no MarkCspFailed needed).
  for (uint32_t i = 0; i < losses; ++i) {
    auto state = cloud.client->registry().state(kNumCsps - 1 - i);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, CspState::kFailed);
  }
  EXPECT_EQ(report->stats.chunks_repaired, cloud.client->chunk_table().size());
  EXPECT_EQ(report->stats.chunks_unrepairable, 0u);
  EXPECT_GT(report->stats.shares_rebuilt, 0u);
  EXPECT_GT(report->stats.bytes_moved, 0u);
  EXPECT_TRUE(report->unrepaired.empty());

  // Every chunk is back at its target with no stale dead locations.
  for (const ChunkHealth& chunk : cloud.client->ScrubScan()) {
    EXPECT_FALSE(chunk.degraded());
    EXPECT_GE(chunk.live_shares, chunk.t);
  }
  // Content still round-trips with the dead CSPs still dead.
  auto get = cloud.client->Get("a.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content_a);

  // The republished metadata lets a fresh device recover everything from
  // the surviving CSPs alone.
  CyrusConfig other = SmallConfig("device-2");
  auto second = CyrusClient::Create(other);
  ASSERT_TRUE(second.ok());
  for (int i = 0; i + static_cast<int>(losses) < kNumCsps; ++i) {
    ASSERT_TRUE((*second)->AddCsp(cloud.faults[i], CspProfile{}, Credentials{"token"}).ok());
  }
  ASSERT_TRUE((*second)->Recover().ok());
  auto recovered = (*second)->Get("b.bin");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->content, content_b);
}

TEST(RepairTest, SecondScrubPassIsIdempotent) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(16 * 1024, 5)).ok());
  cloud.stores[4]->set_available(false);
  auto first = cloud.client->ScrubOnce();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_GT(first->stats.chunks_repaired, 0u);

  auto second = cloud.client->ScrubOnce();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->stats.chunks_degraded, 0u);
  EXPECT_EQ(second->stats.chunks_repaired, 0u);
  EXPECT_EQ(second->stats.bytes_moved, 0u);
  EXPECT_TRUE(second->repaired_chunks.empty());
}

TEST(RepairTest, ScrubCatchesSilentObjectLoss) {
  RepairCloud cloud = MakeCloud();
  const Bytes content = RandomContent(20 * 1024, 6);
  ASSERT_TRUE(cloud.client->Put("a.bin", content).ok());

  // A provider-side incident destroys every object on CSP 2; no API call
  // ever returns an error for it.
  auto destroyed = cloud.faults[2]->DestroyRandomObjects(1.0);
  ASSERT_TRUE(destroyed.ok());
  ASSERT_GT(*destroyed, 0u);

  std::vector<ChunkHealth> before = cloud.client->ScrubScan();
  bool any_degraded = false;
  for (const ChunkHealth& chunk : before) {
    any_degraded = any_degraded || chunk.degraded();
  }
  ASSERT_TRUE(any_degraded);  // only the probe can see this failure mode

  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->stats.chunks_repaired, 0u);
  for (const ChunkHealth& chunk : cloud.client->ScrubScan()) {
    EXPECT_FALSE(chunk.degraded());
  }
  auto get = cloud.client->Get("a.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(RepairTest, RecoveredCspIsReprobedInsteadOfTrusted) {
  RepairCloud cloud = MakeCloud();
  const Bytes content = RandomContent(18 * 1024, 7);
  ASSERT_TRUE(cloud.client->Put("a.bin", content).ok());
  const size_t shares_on_0 = cloud.client->chunk_table().ChunksOnCsp(0).size();
  ASSERT_GT(shares_on_0, 0u);

  // CSP 0 goes down, loses its disk, and comes back empty-handed.
  cloud.faults[0]->set_permanently_down(true);
  ASSERT_TRUE(cloud.client->MarkCspFailed(0).ok());
  ASSERT_TRUE(cloud.faults[0]->DestroyRandomObjects(1.0).ok());
  cloud.faults[0]->set_permanently_down(false);
  ASSERT_TRUE(cloud.client->MarkCspRecovered(0).ok());

  // Recovery must not blindly trust the pre-outage ShareLocations: the CSP
  // is flagged until a scrub re-verifies what it actually holds. The chunk
  // table still lists the (now vanished) shares at this point.
  EXPECT_EQ(cloud.client->csps_pending_reprobe(), std::vector<int>{0});
  EXPECT_EQ(cloud.client->chunk_table().ChunksOnCsp(0).size(), shares_on_0);

  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->stats.chunks_repaired, 0u);
  EXPECT_TRUE(cloud.client->csps_pending_reprobe().empty());
  for (const ChunkHealth& chunk : cloud.client->ScrubScan()) {
    EXPECT_FALSE(chunk.degraded());
  }
  auto get = cloud.client->Get("a.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);
}

TEST(RepairTest, RepairCapDefersWorstChunksLast) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(40 * 1024, 8)).ok());
  ASSERT_GT(cloud.client->chunk_table().size(), 1u);
  cloud.stores[4]->set_available(false);

  RepairEngineOptions options = cloud.client->repair_engine().options();
  options.max_repairs_per_pass = 1;
  cloud.client->repair_engine().set_options(options);

  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->stats.chunks_repaired, 1u);
  EXPECT_GT(report->stats.chunks_deferred, 0u);
  EXPECT_FALSE(report->unrepaired.empty());

  // Lifting the cap lets the next pass drain the backlog.
  options.max_repairs_per_pass = 0;
  cloud.client->repair_engine().set_options(options);
  auto drained = cloud.client->ScrubOnce();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_GT(drained->stats.chunks_repaired, 0u);
  EXPECT_TRUE(drained->unrepaired.empty());
}

TEST(RepairTest, BandwidthBudgetDefersRepairs) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(40 * 1024, 9)).ok());
  cloud.stores[4]->set_available(false);

  RepairEngineOptions options = cloud.client->repair_engine().options();
  options.bandwidth_budget_bytes = 1;  // too small for any repair
  cloud.client->repair_engine().set_options(options);
  auto starved = cloud.client->ScrubOnce();
  ASSERT_TRUE(starved.ok()) << starved.status();
  EXPECT_EQ(starved->stats.chunks_repaired, 0u);
  EXPECT_GT(starved->stats.chunks_deferred, 0u);
  EXPECT_EQ(starved->stats.bytes_moved, 0u);

  options.bandwidth_budget_bytes = 0;  // unlimited
  cloud.client->repair_engine().set_options(options);
  auto full = cloud.client->ScrubOnce();
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_GT(full->stats.chunks_repaired, 0u);
  for (const ChunkHealth& chunk : cloud.client->ScrubScan()) {
    EXPECT_FALSE(chunk.degraded());
  }
}

TEST(RepairTest, ChunkBelowThresholdIsUnrepairable) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(6 * 1024, 10)).ok());

  // Kill every holder of one chunk except a single share: fewer than t
  // survive, so the scrub must report the loss rather than "repair" it.
  const std::vector<Sha1Digest> ids = cloud.client->chunk_table().AllChunkIds();
  ASSERT_FALSE(ids.empty());
  const ChunkEntry* entry = cloud.client->chunk_table().Find(ids.front());
  ASSERT_NE(entry, nullptr);
  std::set<int> holders;
  for (const ChunkShare& share : entry->shares) {
    holders.insert(share.csp);
  }
  ASSERT_GT(holders.size(), 1u);
  size_t killed = 0;
  for (int csp : holders) {
    if (killed + 1 >= holders.size()) {
      break;  // leave exactly one holder alive
    }
    cloud.stores[csp]->set_available(false);
    ++killed;
  }

  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->stats.chunks_unrepairable, 0u);
  EXPECT_FALSE(report->unrepaired.empty());
}

TEST(RepairTest, ScrubTransfersFeedTheFlowSimulator) {
  RepairCloud cloud = MakeCloud();
  ASSERT_TRUE(cloud.client->Put("a.bin", RandomContent(20 * 1024, 11)).ok());
  cloud.stores[4]->set_available(false);
  auto report = cloud.client->ScrubOnce();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->stats.chunks_repaired, 0u);
  // Repair downloads, uploads, and the metadata republish are all
  // journaled; the flow simulator can price a scrub pass like any Get.
  bool saw_get = false;
  bool saw_put = false;
  bool saw_meta = false;
  for (const TransferRecord& record : report->transfer.records) {
    saw_get = saw_get || record.kind == TransferKind::kGet;
    saw_put = saw_put || record.kind == TransferKind::kPut;
    saw_meta = saw_meta || record.kind == TransferKind::kPutMeta;
  }
  EXPECT_TRUE(saw_get);
  EXPECT_TRUE(saw_put);
  EXPECT_TRUE(saw_meta);
}

}  // namespace
}  // namespace cyrus
