// Tests for the REST substrate: HTTP primitives, JSON/XML codecs, the
// OAuth token service, the simulated vendor endpoints, the connector's
// dialect handling and token refresh, and a full CYRUS client running over
// REST providers of both dialects.
#include <gtest/gtest.h>

#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/sync_service.h"
#include "src/gateway/gateway.h"
#include "src/gateway/gateway_rest.h"
#include "src/obs/metrics.h"
#include "src/rest/http.h"
#include "src/rest/json.h"
#include "src/rest/oauth.h"
#include "src/rest/rest_connector.h"
#include "src/rest/rest_server.h"
#include "src/rest/xml.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// --- HTTP primitives ---

TEST(HttpTest, UrlEncodeDecodeRoundTrip) {
  const std::string raw = "meta-ab.0 /+%&=\xc3\xa9";
  auto back = UrlDecode(UrlEncode(raw));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(HttpTest, UrlDecodePlusAsSpace) {
  auto decoded = UrlDecode("a+b");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "a b");
}

TEST(HttpTest, UrlDecodeRejectsBadEscape) {
  EXPECT_FALSE(UrlDecode("%zz").ok());
  EXPECT_FALSE(UrlDecode("%a").ok());
}

TEST(HttpTest, QueryStringRoundTrip) {
  const std::map<std::string, std::string> query = {
      {"name", "docs/a b.txt"}, {"prefix", "meta-"}, {"empty", ""}};
  auto back = ParseQueryString(BuildQueryString(query));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, query);
}

TEST(HttpTest, RequestLineRendering) {
  HttpRequest request;
  request.method = HttpMethod::kPost;
  request.path = "/files/upload";
  request.query["name"] = "a b";
  EXPECT_EQ(request.RequestLine(), "POST /files/upload?name=a%20b");
}

TEST(HttpTest, ResponseHelpers) {
  const HttpResponse ok = HttpResponse::Ok(ToBytes("x"), "text/plain");
  EXPECT_TRUE(ok.ok());
  const HttpResponse err = HttpResponse::Error(404, "missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status, 404);
}

// --- JSON ---

TEST(JsonTest, ParseBasicDocument) {
  auto value = JsonValue::Parse(
      R"({"name":"file.txt","size":123,"tags":["a","b"],"ok":true,"missing":null})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)["name"].AsString(), "file.txt");
  EXPECT_DOUBLE_EQ((*value)["size"].AsNumber(), 123);
  EXPECT_EQ((*value)["tags"].AsArray().size(), 2u);
  EXPECT_TRUE((*value)["ok"].AsBool());
  EXPECT_TRUE((*value)["missing"].is_null());
  EXPECT_TRUE((*value)["absent"].is_null());
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue value;
  value.Set("text", "line1\nline2 \"quoted\"")
      .Set("num", 3.5)
      .Set("neg", -42)
      .Set("flag", false);
  JsonValue list{JsonValue::Array{}};
  list.Append(1).Append("two").Append(JsonValue());
  value.Set("list", std::move(list));
  auto back = JsonValue::Parse(value.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, value);
}

TEST(JsonTest, ParsesNestedStructures) {
  auto value = JsonValue::Parse(R"({"a":{"b":{"c":[1,2,{"d":"deep"}]}}})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)["a"]["b"]["c"].AsArray()[2]["d"].AsString(), "deep");
}

TEST(JsonTest, UnicodeEscapes) {
  auto value = JsonValue::Parse(R"("café")");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "caf\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("123 456").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonTest, IntegersSerializeWithoutExponent) {
  JsonValue value;
  value.Set("size", uint64_t{638433479});
  EXPECT_NE(value.Dump().find("638433479"), std::string::npos);
}

// --- XML ---

TEST(XmlTest, DumpParseRoundTrip) {
  XmlElement root("ListResult");
  root.SetAttribute("truncated", "false");
  XmlElement& object = root.AddChild("Object");
  object.SetAttribute("name", "a<b>&\"c\"");
  object.SetAttribute("size", "42");
  root.AddChild("Empty");

  auto back = XmlElement::Parse(root.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "ListResult");
  EXPECT_EQ(back->Attribute("truncated"), "false");
  ASSERT_NE(back->Child("Object"), nullptr);
  EXPECT_EQ(back->Child("Object")->Attribute("name"), "a<b>&\"c\"");
  EXPECT_NE(back->Child("Empty"), nullptr);
}

TEST(XmlTest, TextContentAndPrologue) {
  auto root = XmlElement::Parse("<?xml version=\"1.0\"?><Msg>hello &amp; goodbye</Msg>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->text(), "hello & goodbye");
}

TEST(XmlTest, MultipleChildrenWithSameName) {
  auto root = XmlElement::Parse("<L><O name='a'/><O name='b'/><Other/></L>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->Children("O").size(), 2u);
}

TEST(XmlTest, RejectsMalformed) {
  EXPECT_FALSE(XmlElement::Parse("<a><b></a></b>").ok());
  EXPECT_FALSE(XmlElement::Parse("<a").ok());
  EXPECT_FALSE(XmlElement::Parse("<a></a><b/>").ok());
  EXPECT_FALSE(XmlElement::Parse("<a attr=novalue/>").ok());
}

// --- OAuth ---

TEST(OAuthTest, AuthorizationCodeFlow) {
  OAuthService oauth(100.0);
  oauth.RegisterClient("app", "secret", "code123");
  auto token = oauth.ExchangeAuthorizationCode("app", "secret", "code123", 0.0);
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(oauth.ValidateBearer(token->access_token, 50.0).ok());
  EXPECT_FALSE(oauth.ValidateBearer(token->access_token, 150.0).ok());  // expired
}

TEST(OAuthTest, RejectsBadCredentials) {
  OAuthService oauth(100.0);
  oauth.RegisterClient("app", "secret", "code123");
  EXPECT_FALSE(oauth.ExchangeAuthorizationCode("app", "wrong", "code123", 0.0).ok());
  EXPECT_FALSE(oauth.ExchangeAuthorizationCode("app", "secret", "bad-code", 0.0).ok());
  EXPECT_FALSE(oauth.ExchangeAuthorizationCode("ghost", "secret", "code123", 0.0).ok());
}

TEST(OAuthTest, RefreshIssuesNewAccessToken) {
  OAuthService oauth(100.0);
  oauth.RegisterClient("app", "secret", "code");
  auto token = oauth.ExchangeAuthorizationCode("app", "secret", "code", 0.0);
  ASSERT_TRUE(token.ok());
  auto refreshed = oauth.Refresh("app", "secret", token->refresh_token, 120.0);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_NE(refreshed->access_token, token->access_token);
  EXPECT_TRUE(oauth.ValidateBearer(refreshed->access_token, 150.0).ok());
}

TEST(OAuthTest, RevokeAllInvalidatesAccessButNotRefresh) {
  OAuthService oauth(100.0);
  oauth.RegisterClient("app", "secret", "code");
  auto token = oauth.ExchangeAuthorizationCode("app", "secret", "code", 0.0);
  ASSERT_TRUE(token.ok());
  oauth.RevokeAllAccessTokens();
  EXPECT_FALSE(oauth.ValidateBearer(token->access_token, 1.0).ok());
  EXPECT_TRUE(oauth.Refresh("app", "secret", token->refresh_token, 1.0).ok());
}

// --- Vendor servers + connector ---

std::shared_ptr<RestVendorServer> MakeJsonVendor(std::string id = "dropbox-like") {
  RestVendorOptions options;
  options.id = std::move(id);
  options.dialect = ApiDialect::kJson;
  return std::make_shared<RestVendorServer>(options);
}

std::shared_ptr<RestVendorServer> MakeXmlVendor(std::string id = "s3-like") {
  RestVendorOptions options;
  options.id = std::move(id);
  options.dialect = ApiDialect::kXml;
  options.naming = NamingPolicy::kIdKeyed;
  return std::make_shared<RestVendorServer>(options);
}

TEST(RestConnectorTest, JsonDialectRoundTrip) {
  auto server = MakeJsonVendor();
  RestConnector connector("dropbox-like", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"granted"}).ok());
  ASSERT_TRUE(connector.Upload("dir/file one", ToBytes("payload")).ok());
  auto data = connector.Download("dir/file one");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "payload");
  auto listing = connector.List("dir/");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "dir/file one");
  EXPECT_EQ((*listing)[0].size, 7u);
  ASSERT_TRUE(connector.Delete("dir/file one").ok());
  EXPECT_EQ(connector.Download("dir/file one").status().code(), StatusCode::kNotFound);
}

TEST(RestConnectorTest, XmlDialectRoundTrip) {
  auto server = MakeXmlVendor();
  RestConnector connector("s3-like", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"api-key"}).ok());
  ASSERT_TRUE(connector.Upload("blob&<>", ToBytes("xml payload")).ok());
  auto data = connector.Download("blob&<>");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "xml payload");
  auto listing = connector.List("");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "blob&<>");
}

TEST(RestConnectorTest, BadOAuthCodeRejected) {
  auto server = MakeJsonVendor();
  RestConnector connector("dropbox-like", server);
  EXPECT_EQ(connector.Authenticate(Credentials{"stolen-code"}).code(),
            StatusCode::kPermissionDenied);
}

TEST(RestConnectorTest, BadApiKeyRejected) {
  auto server = MakeXmlVendor();
  RestConnector connector("s3-like", server);
  EXPECT_EQ(connector.Authenticate(Credentials{"wrong"}).code(),
            StatusCode::kPermissionDenied);
}

TEST(RestConnectorTest, UnauthenticatedCallsFail) {
  auto server = MakeJsonVendor();
  RestConnector connector("dropbox-like", server);
  EXPECT_EQ(connector.Upload("f", ToBytes("x")).code(), StatusCode::kPermissionDenied);
}

TEST(RestConnectorTest, TokenRefreshIsTransparent) {
  auto server = MakeJsonVendor();
  RestConnector connector("dropbox-like", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"granted"}).ok());
  ASSERT_TRUE(connector.Upload("f", ToBytes("v1")).ok());
  EXPECT_EQ(connector.token_refreshes(), 0u);

  // The vendor revokes all bearer tokens (or they expire); the next call
  // must refresh and succeed without the caller noticing.
  server->ExpireTokens();
  auto data = connector.Download("f");
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(ToString(*data), "v1");
  EXPECT_EQ(connector.token_refreshes(), 1u);
}

TEST(RestConnectorTest, OutageSurfacesAsUnavailable) {
  auto server = MakeJsonVendor();
  RestConnector connector("dropbox-like", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"granted"}).ok());
  server->set_available(false);
  EXPECT_EQ(connector.Upload("f", ToBytes("x")).code(), StatusCode::kUnavailable);
  server->set_available(true);
  EXPECT_TRUE(connector.Upload("f", ToBytes("x")).ok());
}

TEST(RestConnectorTest, QuotaSurfacesAsResourceExhausted) {
  RestVendorOptions options;
  options.id = "tiny";
  options.quota_bytes = 4;
  auto server = std::make_shared<RestVendorServer>(options);
  RestConnector connector("tiny", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"granted"}).ok());
  EXPECT_EQ(connector.Upload("big", ToBytes("way too large")).code(),
            StatusCode::kResourceExhausted);
}

TEST(RestVendorServerTest, ServesMetricsScrape) {
  // The vendor exposes GET /metrics like a real sidecar scrape endpoint:
  // Prometheus text by default, JSON on ?format=json, reachable even while
  // the vendor simulates an outage.
  obs::MetricsRegistry registry;
  registry.GetCounter("cyrus_test_events_total", {{"csp", "v0"}}, "Test events")
      ->Increment(7);

  RestVendorOptions options;
  options.id = "metrics-vendor";
  options.metrics = &registry;
  RestVendorServer server(options);

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = "/metrics";
  HttpResponse text = server.Handle(request);
  EXPECT_EQ(text.status, 200);
  EXPECT_EQ(text.headers.at("content-type"), "text/plain; version=0.0.4");
  EXPECT_NE(ToString(text.body).find("cyrus_test_events_total{csp=\"v0\"} 7"),
            std::string::npos);

  request.query["format"] = "json";
  HttpResponse json = server.Handle(request);
  EXPECT_EQ(json.status, 200);
  auto parsed = JsonValue::Parse(ToString(json.body));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ((*parsed)["metrics"].AsArray().size(), 1u);
  EXPECT_DOUBLE_EQ((*parsed)["metrics"].AsArray()[0]["value"].AsNumber(), 7.0);

  server.set_available(false);
  EXPECT_EQ(server.Handle(request).status, 200);  // scrape survives outages
  request.method = HttpMethod::kPost;
  EXPECT_EQ(server.Handle(request).status, 405);  // GET-only
}

TEST(RestVendorServerTest, IdKeyedListsDuplicates) {
  auto server = MakeXmlVendor();
  RestConnector connector("s3-like", server);
  ASSERT_TRUE(connector.Authenticate(Credentials{"api-key"}).ok());
  ASSERT_TRUE(connector.Upload("f", ToBytes("v1")).ok());
  ASSERT_TRUE(connector.Upload("f", ToBytes("v2")).ok());
  auto listing = connector.List("");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);  // id-keyed: both objects visible
  EXPECT_EQ(ToString(*connector.Download("f")), "v2");
}

// --- Full stack: CYRUS over REST providers of both dialects ---

TEST(RestEndToEndTest, CyrusClientOverRestVendors) {
  CyrusConfig config;
  config.key_string = "rest e2e key";
  config.client_id = "laptop";
  config.t = 2;
  config.epsilon = 1e-2;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  auto client = std::move(CyrusClient::Create(config)).value();

  std::vector<std::shared_ptr<RestVendorServer>> servers;
  for (int i = 0; i < 3; ++i) {
    RestVendorOptions options;
    options.id = StrCat("vendor", i);
    options.dialect = (i == 2) ? ApiDialect::kXml : ApiDialect::kJson;
    options.naming = (i == 1) ? NamingPolicy::kIdKeyed : NamingPolicy::kNameKeyed;
    servers.push_back(std::make_shared<RestVendorServer>(options));
    auto connector = std::make_shared<RestConnector>(options.id, servers.back());
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    const std::string grant = (options.dialect == ApiDialect::kXml) ? "api-key" : "granted";
    ASSERT_TRUE(client->AddCsp(connector, profile, Credentials{grant}).ok());
  }

  Rng rng(33);
  Bytes content(20 * 1024);
  for (auto& b : content) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto put = client->Put("over/rest.bin", content);
  ASSERT_TRUE(put.ok()) << put.status();
  auto get = client->Get("over/rest.bin");
  ASSERT_TRUE(get.ok()) << get.status();
  EXPECT_EQ(get->content, content);

  // Bearer-token expiry mid-session: the JSON vendors revoke tokens; reads
  // keep working through transparent refresh.
  servers[0]->ExpireTokens();
  servers[1]->ExpireTokens();
  auto again = client->Get("over/rest.bin");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->content, content);

  // A second device recovers everything over the same REST endpoints.
  config.client_id = "phone";
  auto device2 = std::move(CyrusClient::Create(config)).value();
  for (size_t i = 0; i < servers.size(); ++i) {
    auto connector = std::make_shared<RestConnector>(StrCat("vendor", i), servers[i]);
    const std::string grant = (i == 2) ? "api-key" : "granted";
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    ASSERT_TRUE(device2->AddCsp(connector, profile, Credentials{grant}).ok());
  }
  ASSERT_TRUE(device2->Recover().ok());
  auto recovered = device2->Get("over/rest.bin");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->content, content);
}

TEST(RestEndToEndTest, SyncServiceOverRestVendors) {
  // The full §5.4 folder-sync loop running over REST providers: two
  // devices, periodic sync via the event queue, a concurrent edit resolved
  // without losing data - every byte moving through HTTP requests.
  std::vector<std::shared_ptr<RestVendorServer>> servers;
  for (int i = 0; i < 3; ++i) {
    RestVendorOptions options;
    options.id = StrCat("sv", i);
    options.dialect = (i == 0) ? ApiDialect::kXml : ApiDialect::kJson;
    servers.push_back(std::make_shared<RestVendorServer>(options));
  }
  auto make_device = [&](const char* id) {
    CyrusConfig config;
    config.key_string = "rest sync key";
    config.client_id = id;
    config.t = 2;
    config.epsilon = 1e-2;
    config.chunker = ChunkerOptions::ForTesting();
    config.cluster_aware = false;
    auto client = std::move(CyrusClient::Create(config)).value();
    for (size_t i = 0; i < servers.size(); ++i) {
      auto connector = std::make_shared<RestConnector>(StrCat("sv", i), servers[i]);
      CspProfile profile;
      profile.download_bytes_per_sec = 2e6;
      profile.upload_bytes_per_sec = 1e6;
      const std::string grant = (i == 0) ? "api-key" : "granted";
      EXPECT_TRUE(client->AddCsp(connector, profile, Credentials{grant}).ok());
    }
    return client;
  };
  auto alice = make_device("alice");
  auto bob = make_device("bob");
  LocalWorkspace alice_ws, bob_ws;
  SyncOptions options;
  options.interval_seconds = 10.0;
  SyncService alice_sync(alice.get(), &alice_ws, options);
  SyncService bob_sync(bob.get(), &bob_ws, options);

  EventQueue queue;
  alice_sync.Start(&queue);
  bob_sync.Start(&queue);
  queue.ScheduleAt(5.0, [&] { alice_ws.WriteFile("plan.md", ToBytes("v1"), 5.0); });
  queue.RunUntil(40.0);
  ASSERT_TRUE(bob_ws.Exists("plan.md"));

  // Concurrent edits land between sync ticks; auto-resolution keeps both.
  queue.ScheduleAt(41.0, [&] {
    alice_ws.WriteFile("plan.md", ToBytes("alice edit"), 41.0);
    bob_ws.WriteFile("plan.md", ToBytes("bob edit"), 41.5);
  });
  queue.RunUntil(120.0);
  alice_sync.Stop();
  bob_sync.Stop();
  queue.RunUntil(200.0);

  const std::string alice_view = ToString(*alice_ws.ReadFile("plan.md"));
  const std::string bob_view = ToString(*bob_ws.ReadFile("plan.md"));
  EXPECT_EQ(alice_view, bob_view);  // converged
  // Both edits survive somewhere in each workspace.
  size_t alice_files = alice_ws.FileNames().size();
  EXPECT_GE(alice_files, 2u);
}


// --- gateway REST frontend (scrape + routing behavior) ---

// A single-shard gateway over one simulated CSP pool, enough to exercise
// the frontend's HTTP surface.
std::unique_ptr<GatewayService> MakeTinyGateway(obs::MetricsRegistry* metrics) {
  CyrusConfig config;
  config.client_id = "rest-gw-shard-0";
  config.key_string = "rest gateway key";
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 1;
  auto client = CyrusClient::Create(std::move(config));
  EXPECT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 3; ++i) {
    SimulatedCspOptions o;
    o.id = "gw-csp" + std::to_string(i);
    EXPECT_TRUE(client.value()
                    ->AddCsp(std::make_shared<SimulatedCsp>(o), CspProfile{},
                             Credentials{"token"})
                    .ok());
  }
  GatewayOptions options;
  options.metrics = metrics;
  std::vector<std::unique_ptr<CyrusClient>> clients;
  clients.push_back(std::move(client).value());
  auto gateway = GatewayService::Create(options, std::move(clients));
  EXPECT_TRUE(gateway.ok()) << gateway.status();
  return std::move(gateway).value();
}

TEST(GatewayFrontendTest, MetricsScrapeFormatsAndContentTypes) {
  obs::MetricsRegistry registry;
  auto gateway = MakeTinyGateway(&registry);
  ASSERT_TRUE(gateway->RegisterTenant("acme").ok());
  ASSERT_TRUE(gateway->Put("acme", "a.txt", ToBytes("hello")).ok());
  GatewayRestFrontend frontend(gateway.get(), &registry);

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = "/metrics";
  HttpResponse text = frontend.Handle(request);
  EXPECT_EQ(text.status, 200);
  EXPECT_EQ(text.headers.at("content-type"), "text/plain; version=0.0.4");
  EXPECT_NE(ToString(text.body).find("cyrus_gateway_ops_total"),
            std::string::npos);

  request.query["format"] = "json";
  HttpResponse json = frontend.Handle(request);
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.headers.at("content-type"), "application/json");
  auto parsed = JsonValue::Parse(ToString(json.body));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_GT((*parsed)["metrics"].AsArray().size(), 0u);

  // The filtered endpoint serves only cyrus_gateway_* families.
  HttpRequest filtered;
  filtered.method = HttpMethod::kGet;
  filtered.path = "/gateway/metrics";
  HttpResponse gw = frontend.Handle(filtered);
  EXPECT_EQ(gw.status, 200);
  EXPECT_EQ(gw.headers.at("content-type"), "application/json");
  auto gw_parsed = JsonValue::Parse(ToString(gw.body));
  ASSERT_TRUE(gw_parsed.ok()) << gw_parsed.status();
  for (const JsonValue& metric : (*gw_parsed)["metrics"].AsArray()) {
    EXPECT_EQ(metric["name"].AsString().rfind("cyrus_gateway_", 0), 0u)
        << metric["name"].AsString();
  }

  // POST /metrics is a method error, like the vendor scrape.
  HttpRequest post = request;
  post.method = HttpMethod::kPost;
  EXPECT_EQ(frontend.Handle(post).status, 405);
}

TEST(GatewayFrontendTest, UnknownGatewayPathsAre404) {
  obs::MetricsRegistry registry;
  auto gateway = MakeTinyGateway(&registry);
  GatewayRestFrontend frontend(gateway.get(), &registry);
  for (const char* path :
       {"/gateway", "/gateway/", "/gateway/stats/extra", "/gateway/t1/blobs/x",
        "/gateway/t1/files/rename", "/nope"}) {
    HttpRequest request;
    request.method = HttpMethod::kGet;
    request.path = path;
    EXPECT_EQ(frontend.Handle(request).status, 404) << path;
  }
}

TEST(GatewayFrontendTest, ScrapeSurvivesFrontendOutage) {
  obs::MetricsRegistry registry;
  auto gateway = MakeTinyGateway(&registry);
  ASSERT_TRUE(gateway->RegisterTenant("acme").ok());
  GatewayRestFrontend frontend(gateway.get(), &registry);
  frontend.set_available(false);

  // Every gateway route is down...
  for (const char* path : {"/gateway/stats", "/gateway/metrics",
                           "/gateway/acme/files/list"}) {
    HttpRequest request;
    request.method = HttpMethod::kGet;
    request.path = path;
    EXPECT_EQ(frontend.Handle(request).status, 503) << path;
  }
  // ...except the scrape an operator needs to diagnose the outage.
  HttpRequest scrape;
  scrape.method = HttpMethod::kGet;
  scrape.path = "/metrics";
  EXPECT_EQ(frontend.Handle(scrape).status, 200);

  frontend.set_available(true);
  HttpRequest stats;
  stats.method = HttpMethod::kGet;
  stats.path = "/gateway/stats";
  EXPECT_EQ(frontend.Handle(stats).status, 200);
}

}  // namespace
}  // namespace cyrus
