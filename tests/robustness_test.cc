// Fast unit tests for the degraded-mode building blocks: the per-CSP
// circuit breaker (state machine + connector decorator), the hedged
// fetcher, and the crash-safe Put write-intent journal. The end-to-end
// chaos battery lives in tests/degraded_test.cc (ctest label `chaos`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/cloud/circuit_breaker.h"
#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/hedged_fetch.h"
#include "src/core/put_journal.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

using State = CircuitBreaker::State;

struct BreakerHarness {
  double now = 0.0;
  obs::MetricsRegistry metrics;
  std::unique_ptr<CircuitBreaker> breaker;

  explicit BreakerHarness(CircuitBreakerOptions options) {
    options.metrics = &metrics;
    breaker = std::make_unique<CircuitBreaker>("test-csp", options,
                                               [this] { return now; });
  }
};

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  BreakerHarness h(options);

  EXPECT_TRUE(h.breaker->AllowRequest());
  h.breaker->RecordFailure();
  h.breaker->RecordFailure();
  EXPECT_EQ(h.breaker->state(), State::kClosed);
  h.breaker->RecordFailure();
  EXPECT_EQ(h.breaker->state(), State::kOpen);
  EXPECT_FALSE(h.breaker->AllowRequest());
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  BreakerHarness h(options);

  h.breaker->RecordFailure();
  h.breaker->RecordSuccess();  // streak broken
  h.breaker->RecordFailure();
  EXPECT_EQ(h.breaker->state(), State::kClosed);
}

TEST(CircuitBreakerTest, CooldownAdmitsExactlyOneProbe) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 30.0;
  BreakerHarness h(options);

  h.breaker->RecordFailure();
  EXPECT_EQ(h.breaker->state(), State::kOpen);
  h.now = 29.0;
  EXPECT_FALSE(h.breaker->AllowRequest());  // cooling down

  h.now = 31.0;
  EXPECT_TRUE(h.breaker->AllowRequest());   // the probe slot
  EXPECT_EQ(h.breaker->state(), State::kHalfOpen);
  EXPECT_FALSE(h.breaker->AllowRequest());  // slot already taken

  h.breaker->RecordSuccess();
  EXPECT_EQ(h.breaker->state(), State::kClosed);
  EXPECT_TRUE(h.breaker->AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensWithFreshCooldown) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 10.0;
  BreakerHarness h(options);

  h.breaker->RecordFailure();
  h.now = 11.0;
  ASSERT_TRUE(h.breaker->AllowRequest());
  h.breaker->RecordFailure();  // the probe failed
  EXPECT_EQ(h.breaker->state(), State::kOpen);
  EXPECT_FALSE(h.breaker->AllowRequest());  // fresh cooldown from t=11
  h.now = 22.0;
  EXPECT_TRUE(h.breaker->AllowRequest());
}

TEST(CircuitBreakerTest, RequiresConfiguredHalfOpenSuccesses) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 1.0;
  options.half_open_successes = 2;
  BreakerHarness h(options);

  h.breaker->RecordFailure();
  h.now = 2.0;
  ASSERT_TRUE(h.breaker->AllowRequest());
  h.breaker->RecordSuccess();
  EXPECT_EQ(h.breaker->state(), State::kHalfOpen);  // one down, one to go
  ASSERT_TRUE(h.breaker->AllowRequest());
  h.breaker->RecordSuccess();
  EXPECT_EQ(h.breaker->state(), State::kClosed);
}

TEST(CircuitBreakerTest, TransitionCallbackSeesEveryEdgeButNotForceClose) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_seconds = 1.0;
  BreakerHarness h(options);
  std::vector<std::pair<State, State>> edges;
  h.breaker->set_on_transition(
      [&](State from, State to) { edges.emplace_back(from, to); });

  h.breaker->RecordFailure();                    // closed -> open
  h.now = 2.0;
  ASSERT_TRUE(h.breaker->AllowRequest());        // open -> half-open
  h.breaker->RecordSuccess();                    // half-open -> closed
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(State::kClosed, State::kOpen));
  EXPECT_EQ(edges[1], std::make_pair(State::kOpen, State::kHalfOpen));
  EXPECT_EQ(edges[2], std::make_pair(State::kHalfOpen, State::kClosed));

  h.breaker->RecordFailure();  // closed -> open (edge #4)
  ASSERT_EQ(edges.size(), 4u);
  h.breaker->ForceClose();     // silent: registry is being fixed by caller
  EXPECT_EQ(h.breaker->state(), State::kClosed);
  EXPECT_EQ(edges.size(), 4u);
}

TEST(CircuitBreakerConnectorTest, OpenBreakerFastFailsWithoutTouchingInner) {
  obs::MetricsRegistry metrics;
  SimulatedCspOptions csp_options;
  csp_options.id = "breaker-csp";
  FaultInjectionOptions fault_options;
  fault_options.metrics = &metrics;
  auto fault = std::make_shared<FaultInjectingConnector>(
      std::make_shared<SimulatedCsp>(csp_options), fault_options);
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 1;
  breaker_options.metrics = &metrics;
  double now = 0.0;
  auto breaker = std::make_shared<CircuitBreaker>("breaker-csp", breaker_options,
                                                  [&now] { return now; });
  CircuitBreakerConnector connector(fault, breaker);
  ASSERT_TRUE(connector.Authenticate(Credentials{"token"}).ok());

  const Bytes payload = {1, 2, 3};
  ASSERT_TRUE(connector.Upload("obj", payload).ok());

  // kNotFound is the provider answering: it must NOT trip the breaker.
  EXPECT_EQ(connector.Download("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(breaker->state(), State::kClosed);

  // A health failure trips the threshold-1 breaker...
  fault->set_permanently_down(true);
  EXPECT_EQ(connector.Download("obj").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(breaker->state(), State::kOpen);

  // ...and subsequent calls fast-fail without reaching the injector.
  const uint64_t calls_before = fault->counters().calls;
  EXPECT_EQ(connector.Download("obj").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(connector.Upload("obj2", payload).code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault->counters().calls, calls_before);
  EXPECT_GT(metrics
                .GetCounter("cyrus_breaker_fast_failures_total",
                            {{"csp", "breaker-csp"}}, "")
                ->value(),
            0u);
}

TEST(IsCspHealthFailureTest, ClassifiesProviderVsRequestFailures) {
  EXPECT_TRUE(IsCspHealthFailure(UnavailableError("down")));
  EXPECT_TRUE(IsCspHealthFailure(DeadlineExceededError("slow")));
  EXPECT_TRUE(IsCspHealthFailure(PermissionDeniedError("expired token")));
  EXPECT_FALSE(IsCspHealthFailure(OkStatus()));
  EXPECT_FALSE(IsCspHealthFailure(NotFoundError("no object")));
  EXPECT_FALSE(IsCspHealthFailure(InvalidArgumentError("bad name")));
  EXPECT_FALSE(IsCspHealthFailure(DataLossError("bad digest")));
}

HedgeCandidate InstantCandidate(int csp, uint8_t marker) {
  HedgeCandidate c;
  c.csp = csp;
  c.share_index = static_cast<uint32_t>(csp);
  c.fetch = [marker]() -> Result<Bytes> { return Bytes{marker}; };
  return c;
}

TEST(HedgedFetcherTest, SequentialModeStopsAtNeeded) {
  obs::MetricsRegistry metrics;
  HedgeOptions options;
  options.metrics = &metrics;
  HedgedFetcher fetcher(options, /*pool=*/nullptr, /*monitor=*/nullptr);

  std::vector<HedgeCandidate> candidates;
  for (int i = 0; i < 4; ++i) {
    candidates.push_back(InstantCandidate(i, static_cast<uint8_t>(i)));
  }
  auto results = fetcher.Fetch(std::move(candidates), /*primaries=*/2, /*needed=*/2);
  size_t successes = 0;
  for (const auto& r : results) {
    successes += r.data.ok() ? 1 : 0;
    EXPECT_FALSE(r.hedged);
  }
  EXPECT_EQ(successes, 2u);  // spares never launched
}

TEST(HedgedFetcherTest, FailureLaunchesReplacementNotHedge) {
  obs::MetricsRegistry metrics;
  HedgeOptions options;
  options.max_hedges = 0;  // replacements must work even with no hedge budget
  options.metrics = &metrics;
  HedgedFetcher fetcher(options, /*pool=*/nullptr, /*monitor=*/nullptr);

  std::vector<HedgeCandidate> candidates;
  HedgeCandidate bad;
  bad.csp = 0;
  bad.fetch = []() -> Result<Bytes> { return UnavailableError("csp down"); };
  candidates.push_back(bad);
  candidates.push_back(InstantCandidate(1, 0xB1));
  candidates.push_back(InstantCandidate(2, 0xB2));

  auto results = fetcher.Fetch(std::move(candidates), /*primaries=*/2, /*needed=*/2);
  size_t successes = 0;
  for (const auto& r : results) {
    successes += r.data.ok() ? 1 : 0;
  }
  EXPECT_EQ(successes, 2u);  // the spare replaced the failed primary
  EXPECT_GT(metrics.GetCounter("cyrus_hedge_replacements_total", {}, "")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("cyrus_hedged_requests_total", {}, "")->value(), 0u);
}

TEST(HedgedFetcherTest, StragglerTriggersHedgeAndBackupWins) {
  obs::MetricsRegistry metrics;
  HedgeOptions options;
  options.enabled = true;  // constructed directly, so no client gating
  options.default_deadline_ms = 3.0;
  options.min_deadline_ms = 1.0;
  options.metrics = &metrics;
  ThreadPool pool(4);
  HedgedFetcher fetcher(options, &pool, /*monitor=*/nullptr);

  std::vector<HedgeCandidate> candidates;
  HedgeCandidate slow;
  slow.csp = 0;
  slow.fetch = []() -> Result<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return Bytes{0x51};
  };
  candidates.push_back(slow);
  candidates.push_back(InstantCandidate(1, 0xF1));
  candidates.push_back(InstantCandidate(2, 0xF2));  // the backup

  auto results = fetcher.Fetch(std::move(candidates), /*primaries=*/2, /*needed=*/2);
  size_t successes = 0;
  bool saw_hedged_success = false;
  for (const auto& r : results) {
    if (r.data.ok()) {
      ++successes;
      saw_hedged_success |= r.hedged;
    }
  }
  EXPECT_GE(successes, 2u);
  EXPECT_TRUE(saw_hedged_success);
  EXPECT_GT(metrics.GetCounter("cyrus_hedged_requests_total", {}, "")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("cyrus_hedge_wins_total", {}, "")->value(), 0u);
}

// Regression: the selector can hand over fewer primaries than `needed`
// (infeasible problem, e.g. too few active holders clamps primaries to 1).
// If every primary succeeds there is no failure to trigger a replacement
// and no straggler to hedge, so Fetch() used to wait forever with zero
// fetches in flight; the quota top-up must launch spares instead.
TEST(HedgedFetcherTest, ShortPrimaryListTopsUpToQuota) {
  obs::MetricsRegistry metrics;
  HedgeOptions options;
  options.metrics = &metrics;  // hedging disabled: top-up alone must finish
  ThreadPool pool(4);
  HedgedFetcher fetcher(options, &pool, /*monitor=*/nullptr);

  std::vector<HedgeCandidate> candidates;
  for (int i = 0; i < 3; ++i) {
    candidates.push_back(InstantCandidate(i, static_cast<uint8_t>(0xA0 + i)));
  }
  auto results = fetcher.Fetch(std::move(candidates), /*primaries=*/1, /*needed=*/2);
  size_t successes = 0;
  for (const auto& r : results) {
    successes += r.data.ok() ? 1 : 0;
    EXPECT_FALSE(r.hedged);
  }
  EXPECT_GE(successes, 2u);
  // The top-up is quota maintenance, not a failure replacement or a hedge.
  EXPECT_EQ(metrics.GetCounter("cyrus_hedge_replacements_total", {}, "")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("cyrus_hedged_requests_total", {}, "")->value(), 0u);
}

class PutJournalTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = StrCat(testing::TempDir(), "/cyrus-journal-unit-",
                   testing::UnitTest::GetInstance()->current_test_info()->name(),
                   ".log");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(PutJournalTest, IntentLifecycleAndCompaction) {
  auto journal = PutJournal::Open(path_);
  ASSERT_TRUE(journal.ok()) << journal.status();

  ASSERT_TRUE((*journal)->BeginIntent("ab12", "docs/report.txt").ok());
  ASSERT_TRUE((*journal)->AppendShare("ab12", "dropbox", "share-0").ok());
  ASSERT_TRUE((*journal)->AppendShare("ab12", "gdrive", "share-1").ok());
  const Bytes meta = {0x00, 0x20, 0xFF, 0x0A};  // binary-safe, has \n byte
  ASSERT_TRUE((*journal)->RecordMetadata("ab12", meta).ok());

  auto pending = (*journal)->PendingIntents();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].version_id, "ab12");
  EXPECT_EQ(pending[0].file_name, "docs/report.txt");
  ASSERT_EQ(pending[0].shares.size(), 2u);
  EXPECT_EQ(pending[0].shares[0].csp_name, "dropbox");
  EXPECT_EQ(pending[0].shares[0].object_name, "share-0");
  EXPECT_EQ(pending[0].shares[1].csp_name, "gdrive");
  EXPECT_TRUE(pending[0].has_metadata);
  EXPECT_EQ(pending[0].meta_wire, meta);

  ASSERT_TRUE((*journal)->Commit("ab12").ok());
  EXPECT_TRUE((*journal)->PendingIntents().empty());

  // Reopen: the committed intent was compacted away.
  journal->reset();
  auto reopened = PutJournal::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->PendingIntents().empty());
}

TEST_F(PutJournalTest, PendingIntentsSurviveReopenOldestFirst) {
  {
    auto journal = PutJournal::Open(path_);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->BeginIntent("0a", "first file").ok());
    ASSERT_TRUE((*journal)->AppendShare("0a", "box", "obj-a").ok());
    ASSERT_TRUE((*journal)->BeginIntent("0b", "second file").ok());
    ASSERT_TRUE((*journal)->AppendShare("0b", "box", "obj-b").ok());
  }  // close without committing: the "crash"

  auto journal = PutJournal::Open(path_);
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto pending = (*journal)->PendingIntents();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].version_id, "0a");
  EXPECT_EQ(pending[0].file_name, "first file");
  EXPECT_FALSE(pending[0].has_metadata);
  EXPECT_EQ(pending[1].version_id, "0b");
}

TEST_F(PutJournalTest, TornFinalLineIsDroppedNotFatal) {
  {
    auto journal = PutJournal::Open(path_);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->BeginIntent("c4", "victim").ok());
    ASSERT_TRUE((*journal)->AppendShare("c4", "s3", "obj-1").ok());
  }
  {
    // Crash mid-append: a record without its trailing newline.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "S c4 73";  // truncated share record
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }

  auto journal = PutJournal::Open(path_);
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto pending = (*journal)->PendingIntents();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].version_id, "c4");
  ASSERT_EQ(pending[0].shares.size(), 1u);  // the torn record vanished
}

TEST_F(PutJournalTest, ShareForUnknownIntentIsRejected) {
  auto journal = PutJournal::Open(path_);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_FALSE((*journal)->AppendShare("dead", "box", "obj").ok());
  EXPECT_FALSE((*journal)->RecordMetadata("dead", Bytes{0x01}).ok());
  // Commit is idempotent: a re-commit of an already-compacted intent is OK.
  EXPECT_TRUE((*journal)->Commit("dead").ok());
}

}  // namespace
}  // namespace cyrus
