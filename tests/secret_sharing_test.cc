#include <gtest/gtest.h>

#include <algorithm>

#include "src/rs/secret_sharing.h"
#include "src/util/rng.h"

namespace cyrus {
namespace {

Bytes RandomChunk(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

TEST(SecretSharingTest, RejectsBadParameters) {
  EXPECT_FALSE(SecretSharingCodec::Create("k", 0, 3).ok());
  EXPECT_FALSE(SecretSharingCodec::Create("k", 4, 3).ok());
  EXPECT_FALSE(SecretSharingCodec::Create("k", 2, 256).ok());
}

TEST(SecretSharingTest, ShareSizeIsCeilOfChunkOverT) {
  EXPECT_EQ(ShareSize(100, 2), 50u);
  EXPECT_EQ(ShareSize(101, 2), 51u);
  EXPECT_EQ(ShareSize(0, 3), 0u);
  EXPECT_EQ(ShareSize(1, 3), 1u);
}

TEST(SecretSharingTest, EncodeProducesNSharesOfExpectedSize) {
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(1001, 1);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), 3u);
  for (const Share& s : *shares) {
    EXPECT_EQ(s.data.size(), ShareSize(1001, 2));
  }
}

TEST(SecretSharingTest, RoundTripWithFirstTShares) {
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(4096, 2);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  shares->resize(2);
  auto decoded = codec->Decode(*shares, chunk.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, chunk);
}

// Property sweep: every (t, n) in the paper's operating range round-trips
// from every t-subset of shares.
struct TnParam {
  uint32_t t;
  uint32_t n;
};

class SecretSharingSweep : public ::testing::TestWithParam<TnParam> {};

TEST_P(SecretSharingSweep, EveryTSubsetDecodes) {
  const auto [t, n] = GetParam();
  auto codec = SecretSharingCodec::Create("sweep key", t, n);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(577, 1000 + t * 31 + n);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());

  // Iterate all C(n, t) subsets via bitmasks.
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<uint32_t>(__builtin_popcount(mask)) != t) {
      continue;
    }
    std::vector<Share> subset;
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        subset.push_back((*shares)[i]);
      }
    }
    auto decoded = codec->Decode(subset, chunk.size());
    ASSERT_TRUE(decoded.ok()) << "mask=" << mask;
    EXPECT_EQ(*decoded, chunk) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, SecretSharingSweep,
                         ::testing::Values(TnParam{1, 1}, TnParam{1, 3}, TnParam{2, 3},
                                           TnParam{2, 4}, TnParam{3, 4}, TnParam{3, 5},
                                           TnParam{4, 7}, TnParam{5, 8}, TnParam{10, 11}),
                         [](const ::testing::TestParamInfo<TnParam>& info) {
                           return "t" + std::to_string(info.param.t) + "n" +
                                  std::to_string(info.param.n);
                         });

TEST(SecretSharingTest, FewerThanTSharesFailWithDataLoss) {
  auto codec = SecretSharingCodec::Create("key", 3, 5);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(300, 3);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  shares->resize(2);
  auto decoded = codec->Decode(*shares, chunk.size());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SecretSharingTest, DuplicateShareIndicesDoNotCount) {
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(128, 4);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  const std::vector<Share> dupes = {(*shares)[0], (*shares)[0]};
  EXPECT_EQ(codec->Decode(dupes, chunk.size()).status().code(), StatusCode::kDataLoss);
}

TEST(SecretSharingTest, OutOfRangeIndexRejected) {
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  Share bogus;
  bogus.index = 7;
  bogus.data = Bytes(10, 0);
  EXPECT_EQ(codec->Decode({bogus, bogus}, 20).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SecretSharingTest, WrongShareSizeRejected) {
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(100, 5);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  (*shares)[0].data.pop_back();
  shares->resize(2);
  EXPECT_EQ(codec->Decode(*shares, chunk.size()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SecretSharingTest, EmptyChunkRoundTrips) {
  auto codec = SecretSharingCodec::Create("key", 2, 4);
  ASSERT_TRUE(codec.ok());
  auto shares = codec->Encode(Bytes{});
  ASSERT_TRUE(shares.ok());
  EXPECT_EQ((*shares)[0].data.size(), 0u);
  auto decoded = codec->Decode(*shares, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SecretSharingTest, OneByteChunkRoundTrips) {
  auto codec = SecretSharingCodec::Create("key", 3, 5);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = {0x42};
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  auto decoded = codec->Decode(*shares, 1);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, chunk);
}

TEST(SecretSharingTest, NonSystematic) {
  // No share may contain the plaintext slice it "corresponds" to: with a
  // non-systematic code every share differs from every contiguous slice.
  auto codec = SecretSharingCodec::Create("key", 2, 3);
  ASSERT_TRUE(codec.ok());
  Bytes chunk(200);
  for (size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<uint8_t>(i * 7 + 13);
  }
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  const size_t len = (*shares)[0].data.size();
  for (const Share& s : *shares) {
    for (size_t off = 0; off + len <= chunk.size(); off += len) {
      EXPECT_NE(Bytes(chunk.begin() + off, chunk.begin() + off + len), s.data);
    }
  }
}

TEST(SecretSharingTest, WrongKeyFailsToDecode) {
  // Decoding with a codec derived from a different key string must not
  // produce the original chunk (paper §7.1: the dispersal matrix is keyed).
  auto enc = SecretSharingCodec::Create("right key", 2, 3);
  auto dec = SecretSharingCodec::Create("wrong key", 2, 3);
  ASSERT_TRUE(enc.ok());
  ASSERT_TRUE(dec.ok());
  const Bytes chunk = RandomChunk(256, 6);
  auto shares = enc->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  shares->resize(2);
  auto decoded = dec->Decode(*shares, chunk.size());
  ASSERT_TRUE(decoded.ok());  // decodes *something*...
  EXPECT_NE(*decoded, chunk);  // ...but not the plaintext
}

TEST(SecretSharingTest, DispersalMatrixDependsOnKey) {
  auto a = SecretSharingCodec::Create("alpha", 3, 5);
  auto b = SecretSharingCodec::Create("beta", 3, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->dispersal_matrix(), b->dispersal_matrix());
}

TEST(SecretSharingTest, StorageOverheadIsNOverT) {
  // n shares of chunk/t bytes each: total stored = (n/t) * chunk (paper §8).
  auto codec = SecretSharingCodec::Create("key", 2, 4);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(1000, 7);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  size_t total = 0;
  for (const Share& s : *shares) {
    total += s.data.size();
  }
  EXPECT_EQ(total, 4 * ShareSize(1000, 2));
  EXPECT_EQ(total, 2000u);  // (n/t) == 2x the original bytes
}

TEST(SecretSharingTest, MoreThanTSharesStillDecode) {
  auto codec = SecretSharingCodec::Create("key", 2, 5);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(333, 8);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  auto decoded = codec->Decode(*shares, chunk.size());  // all 5 given
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, chunk);
}

// --- Error-correcting decode (paper §5.1 footnote 9) ---

TEST(ErrorCorrectionTest, RecoversFromOneCorruptedShare) {
  // (t, n) = (2, 4): e_max = (4 - 2) / 2 = 1 corrupted share tolerated.
  auto codec = SecretSharingCodec::Create("ec key", 2, 4);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(999, 40);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  (*shares)[1].data[5] ^= 0xFF;
  (*shares)[1].data[123] ^= 0x01;

  auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->chunk, chunk);
  EXPECT_EQ(result->corrupted_indices, (std::vector<uint32_t>{1}));
}

TEST(ErrorCorrectionTest, RecoversFromTwoCorruptedSharesWithEnoughRedundancy) {
  // (t, n) = (2, 6): e_max = 2.
  auto codec = SecretSharingCodec::Create("ec key", 2, 6);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(512, 41);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  (*shares)[0].data[0] ^= 0xAA;
  (*shares)[3].data[100] ^= 0x42;

  auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->chunk, chunk);
  EXPECT_EQ(result->corrupted_indices, (std::vector<uint32_t>{0, 3}));
}

TEST(ErrorCorrectionTest, TooManyCorruptionsFailClosed) {
  // (t, n) = (2, 4): two corrupted shares exceed e_max = 1.
  auto codec = SecretSharingCodec::Create("ec key", 2, 4);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(256, 42);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  (*shares)[0].data[0] ^= 0x11;
  (*shares)[1].data[0] ^= 0x22;
  auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
  EXPECT_FALSE(result.ok());
}

TEST(ErrorCorrectionTest, CleanSharesDecodeWithNoCorruptionsReported) {
  auto codec = SecretSharingCodec::Create("ec key", 3, 5);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(700, 43);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chunk, chunk);
  EXPECT_TRUE(result->corrupted_indices.empty());
}

TEST(ErrorCorrectionTest, WrongSizedShareTreatedAsCorrupted) {
  auto codec = SecretSharingCodec::Create("ec key", 2, 4);
  ASSERT_TRUE(codec.ok());
  const Bytes chunk = RandomChunk(300, 44);
  auto shares = codec->Encode(chunk);
  ASSERT_TRUE(shares.ok());
  (*shares)[2].data.resize(3);  // truncated by a broken provider
  auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->chunk, chunk);
  EXPECT_EQ(result->corrupted_indices, (std::vector<uint32_t>{2}));
}

TEST(ErrorCorrectionTest, RandomizedSweep) {
  // Property: for random (t, n) with n - t >= 2 and a random corrupted
  // share, the decode recovers the chunk and names the culprit.
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(900 + seed);
    const uint32_t t = 2 + static_cast<uint32_t>(rng.NextBelow(3));
    const uint32_t n = t + 2 + static_cast<uint32_t>(rng.NextBelow(3));
    auto codec = SecretSharingCodec::Create("sweep ec", t, n);
    ASSERT_TRUE(codec.ok());
    const Bytes chunk = RandomChunk(64 + rng.NextBelow(512), seed);
    auto shares = codec->Encode(chunk);
    ASSERT_TRUE(shares.ok());
    const uint32_t victim = static_cast<uint32_t>(rng.NextBelow(n));
    (*shares)[victim].data[rng.NextBelow((*shares)[victim].data.size())] ^= 0x77;
    auto result = codec->DecodeWithErrorCorrection(*shares, chunk.size());
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status();
    EXPECT_EQ(result->chunk, chunk) << "seed " << seed;
    EXPECT_EQ(result->corrupted_indices, (std::vector<uint32_t>{victim}))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace cyrus
