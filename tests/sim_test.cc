#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/util/rng.h"
#include "src/sim/flow_network.h"

namespace cyrus {
namespace {

constexpr double kTol = 1e-6;

// --- EventQueue ---

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
}

// --- FlowNetwork ---

TEST(FlowNetworkTest, SingleFlowSingleLink) {
  FlowNetwork net;
  const int link = net.AddLink(10.0, "link");
  auto results = net.Run({FlowSpec{100.0, {link}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR((*results)[0].completion_time, 10.0, kTol);
  EXPECT_NEAR((*results)[0].mean_rate, 10.0, kTol);
  EXPECT_EQ((*results)[0].tag, 1);
}

TEST(FlowNetworkTest, TwoFlowsShareFairly) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{100.0, {link}, 0.0, 0}, FlowSpec{100.0, {link}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  // Each gets 5 B/s -> both finish at t = 20.
  EXPECT_NEAR((*results)[0].completion_time, 20.0, kTol);
  EXPECT_NEAR((*results)[1].completion_time, 20.0, kTol);
}

TEST(FlowNetworkTest, ShortFlowFinishesThenLongSpeedsUp) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{50.0, {link}, 0.0, 0}, FlowSpec{200.0, {link}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  // Phase 1: both at 5 B/s until t=10 (short done, long has 150 left).
  // Phase 2: long at 10 B/s, finishes at 10 + 15 = 25.
  EXPECT_NEAR((*results)[0].completion_time, 10.0, kTol);
  EXPECT_NEAR((*results)[1].completion_time, 25.0, kTol);
}

TEST(FlowNetworkTest, BottleneckIsClientLink) {
  // Two CSP links of 15 each, but the client downlink caps at 10: flows
  // share the client link fairly.
  FlowNetwork net;
  const int client = net.AddLink(10.0, "client");
  const int csp_a = net.AddLink(15.0, "a");
  const int csp_b = net.AddLink(15.0, "b");
  auto results = net.Run({FlowSpec{100.0, {client, csp_a}, 0.0, 0},
                          FlowSpec{100.0, {client, csp_b}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR((*results)[0].completion_time, 20.0, kTol);
  EXPECT_NEAR((*results)[1].completion_time, 20.0, kTol);
}

TEST(FlowNetworkTest, MaxMinGivesSlowLinkItsShare) {
  // One flow crosses a 2 B/s CSP, another a 15 B/s CSP; client link 10.
  // Max-min: slow flow gets 2, fast flow gets min(15, 10-2) = 8.
  FlowNetwork net;
  const int client = net.AddLink(10.0);
  const int slow = net.AddLink(2.0);
  const int fast = net.AddLink(15.0);
  auto results = net.Run({FlowSpec{20.0, {client, slow}, 0.0, 0},
                          FlowSpec{80.0, {client, fast}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR((*results)[0].completion_time, 10.0, kTol);  // 20 / 2
  EXPECT_NEAR((*results)[1].completion_time, 10.0, kTol);  // 80 / 8
}

TEST(FlowNetworkTest, StaggeredArrivals) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{100.0, {link}, 0.0, 0}, FlowSpec{50.0, {link}, 5.0, 1}});
  ASSERT_TRUE(results.ok());
  // t in [0,5): flow 0 alone at 10 -> 50 left.
  // t in [5,15): both at 5 -> flow 0 done at 15, flow 1 done at 15.
  EXPECT_NEAR((*results)[0].completion_time, 15.0, kTol);
  EXPECT_NEAR((*results)[1].completion_time, 15.0, kTol);
}

TEST(FlowNetworkTest, UnlimitedLinkFlowsFinishInstantly) {
  FlowNetwork net;
  const int link = net.AddLink(0.0);  // unlimited
  auto results = net.Run({FlowSpec{1e9, {link}, 2.0, 0}});
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR((*results)[0].completion_time, 2.0, 1e-3);
}

TEST(FlowNetworkTest, EmptyFlowCompletesAtStart) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{0.0, {link}, 3.0, 0}});
  ASSERT_TRUE(results.ok());
  EXPECT_DOUBLE_EQ((*results)[0].completion_time, 3.0);
  EXPECT_EQ((*results)[0].mean_rate, 0.0);
}

TEST(FlowNetworkTest, RejectsUnknownLink) {
  FlowNetwork net;
  net.AddLink(10.0);
  auto results = net.Run({FlowSpec{10.0, {7}, 0.0, 0}});
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowNetworkTest, RejectsNegativeBytes) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{-1.0, {link}, 0.0, 0}});
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowNetworkTest, ResultsInInputOrder) {
  FlowNetwork net;
  const int link = net.AddLink(10.0);
  auto results = net.Run({FlowSpec{10.0, {link}, 5.0, 42}, FlowSpec{10.0, {link}, 0.0, 7}});
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].tag, 42);
  EXPECT_EQ((*results)[1].tag, 7);
}

TEST(FlowNetworkTest, TestbedScenario) {
  // The paper's testbed shape: 4 fast clouds (15 MB/s) + 3 slow (2 MB/s),
  // one share on each of two fast clouds: 20 MB shares finish in 20/15 s.
  FlowNetwork net;
  std::vector<int> cloud_links;
  for (int i = 0; i < 4; ++i) {
    cloud_links.push_back(net.AddLink(15e6));
  }
  for (int i = 0; i < 3; ++i) {
    cloud_links.push_back(net.AddLink(2e6));
  }
  auto results = net.Run({FlowSpec{20e6, {cloud_links[0]}, 0.0, 0},
                          FlowSpec{20e6, {cloud_links[1]}, 0.0, 1}});
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR((*results)[0].completion_time, 20.0 / 15.0, 1e-3);
  EXPECT_NEAR((*results)[1].completion_time, 20.0 / 15.0, 1e-3);
}

TEST(FlowNetworkTest, ManyFlowsConservative) {
  // Mass conservation: total bytes / client capacity lower-bounds the
  // last completion.
  FlowNetwork net;
  const int client = net.AddLink(10.0);
  std::vector<FlowSpec> flows;
  double total = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double bytes = 10.0 + i;
    total += bytes;
    flows.push_back(FlowSpec{bytes, {client}, 0.0, i});
  }
  auto results = net.Run(flows);
  ASSERT_TRUE(results.ok());
  double last = 0.0;
  for (const FlowResult& r : *results) {
    last = std::max(last, r.completion_time);
  }
  EXPECT_NEAR(last, total / 10.0, 1e-3);
}

TEST(FlowNetworkTest, RandomizedConservationProperties) {
  // Properties over random instances:
  //  - every completion >= its flow's start time;
  //  - no flow beats its best-case solo time across its links;
  //  - the last completion >= total bytes / shared-link capacity whenever
  //    all flows cross one shared link (mass conservation).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    FlowNetwork net;
    const int shared = net.AddLink(rng.NextDouble(5.0, 50.0), "shared");
    std::vector<int> spokes;
    for (int i = 0; i < 4; ++i) {
      spokes.push_back(net.AddLink(rng.NextDouble(2.0, 30.0)));
    }
    std::vector<FlowSpec> flows;
    double total_bytes = 0.0;
    for (int f = 0; f < 12; ++f) {
      FlowSpec flow;
      flow.bytes = rng.NextDouble(10.0, 500.0);
      flow.start_time = rng.NextDouble(0.0, 5.0);
      flow.links = std::vector<int>{shared,
                                    spokes[rng.NextBelow(spokes.size())]};
      flow.tag = f;
      total_bytes += flow.bytes;
      flows.push_back(flow);
    }
    auto results = net.Run(flows);
    ASSERT_TRUE(results.ok());
    double last = 0.0;
    double first_start = 1e18;
    for (size_t f = 0; f < flows.size(); ++f) {
      const FlowResult& r = (*results)[f];
      EXPECT_GE(r.completion_time, flows[f].start_time - 1e-9);
      // Best case: the flow alone at the min capacity of its links.
      double best_rate = 1e18;
      for (int l : flows[f].links) {
        if (net.link(l).capacity > 0) {
          best_rate = std::min(best_rate, net.link(l).capacity);
        }
      }
      EXPECT_GE(r.completion_time + 1e-6,
                flows[f].start_time + flows[f].bytes / best_rate)
          << "seed " << seed << " flow " << f;
      last = std::max(last, r.completion_time);
      first_start = std::min(first_start, flows[f].start_time);
    }
    EXPECT_GE(last + 1e-6, first_start + total_bytes / net.link(shared).capacity)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace cyrus
