// Tests for the synchronization service (§5.4): multi-device folder
// convergence with no client-to-client communication.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/cloud/simulated_csp.h"
#include "src/core/sync_service.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

struct Device {
  std::unique_ptr<CyrusClient> client;
  LocalWorkspace workspace;
  std::unique_ptr<SyncService> service;
};

struct SharedCloud {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;

  SharedCloud() {
    for (int i = 0; i < 4; ++i) {
      csps.push_back(
          std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)}));
    }
  }

  std::unique_ptr<Device> MakeDevice(const std::string& id,
                                     SyncOptions options = SyncOptions{}) {
    auto device = std::make_unique<Device>();
    CyrusConfig config;
    config.key_string = "sync test key";
    config.client_id = id;
    config.t = 2;
    config.epsilon = 1e-4;
    config.chunker = ChunkerOptions::ForTesting();
    config.cluster_aware = false;
    device->client = std::move(CyrusClient::Create(config)).value();
    for (auto& csp : csps) {
      CspProfile profile;
      profile.download_bytes_per_sec = 2e6;
      profile.upload_bytes_per_sec = 1e6;
      EXPECT_TRUE(device->client->AddCsp(csp, profile, Credentials{"token"}).ok());
    }
    device->service =
        std::make_unique<SyncService>(device->client.get(), &device->workspace, options);
    return device;
  }
};

// --- LocalWorkspace ---

TEST(LocalWorkspaceTest, WriteReadDelete) {
  LocalWorkspace ws;
  ws.WriteFile("a.txt", ToBytes("hello"), 1.0);
  EXPECT_TRUE(ws.Exists("a.txt"));
  auto content = ws.ReadFile("a.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), "hello");
  EXPECT_EQ(ws.FileNames(), (std::vector<std::string>{"a.txt"}));

  // Never-synced file: delete forgets it entirely.
  ASSERT_TRUE(ws.DeleteFile("a.txt", 2.0).ok());
  EXPECT_FALSE(ws.Exists("a.txt"));
  EXPECT_EQ(ws.ReadFile("a.txt").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ws.DeleteFile("a.txt", 3.0).code(), StatusCode::kNotFound);
}

// --- SyncService basics ---

TEST(SyncServiceTest, UploadsLocalFiles) {
  SharedCloud cloud;
  auto device = cloud.MakeDevice("d1");
  device->workspace.WriteFile("doc.txt", ToBytes("local content"), 1.0);
  auto stats = device->service->RunOnce();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->uploads, 1u);
  // The cloud now has the file.
  auto listing = device->client->List("");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "doc.txt");
}

TEST(SyncServiceTest, IdempotentWhenNothingChanges) {
  SharedCloud cloud;
  auto device = cloud.MakeDevice("d1");
  device->workspace.WriteFile("doc.txt", ToBytes("content"), 1.0);
  ASSERT_TRUE(device->service->RunOnce().ok());
  auto second = device->service->RunOnce();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->uploads, 0u);
  EXPECT_EQ(second->downloads, 0u);
}

TEST(SyncServiceTest, PropagatesFilesBetweenDevices) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->workspace.WriteFile("shared.md", ToBytes("from device one"), 1.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());

  auto stats = d2->service->RunOnce();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->downloads, 1u);
  auto content = d2->workspace.ReadFile("shared.md");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), "from device one");
}

TEST(SyncServiceTest, PropagatesEdits) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->client->set_time(1.0);
  d1->workspace.WriteFile("doc", ToBytes("v1"), 1.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  ASSERT_TRUE(d2->service->RunOnce().ok());

  d1->client->set_time(2.0);
  d1->workspace.WriteFile("doc", ToBytes("v2 edited"), 2.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  auto stats = d2->service->RunOnce();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->downloads, 1u);
  EXPECT_EQ(ToString(*d2->workspace.ReadFile("doc")), "v2 edited");
}

TEST(SyncServiceTest, PropagatesDeletions) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->workspace.WriteFile("temp.txt", ToBytes("short lived"), 1.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  ASSERT_TRUE(d2->service->RunOnce().ok());
  ASSERT_TRUE(d2->workspace.Exists("temp.txt"));

  ASSERT_TRUE(d1->workspace.DeleteFile("temp.txt", 2.0).ok());
  auto push = d1->service->RunOnce();
  ASSERT_TRUE(push.ok());
  EXPECT_EQ(push->deletes_pushed, 1u);

  auto pull = d2->service->RunOnce();
  ASSERT_TRUE(pull.ok());
  EXPECT_EQ(pull->deletes_pulled, 1u);
  EXPECT_FALSE(d2->workspace.Exists("temp.txt"));
}

TEST(SyncServiceTest, ConcurrentEditsAutoResolveWithoutDataLoss) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->client->set_time(1.0);
  d1->workspace.WriteFile("plan", ToBytes("base"), 1.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  ASSERT_TRUE(d2->service->RunOnce().ok());

  // Both edit before either syncs.
  d1->client->set_time(2.0);
  d2->client->set_time(2.5);
  d1->workspace.WriteFile("plan", ToBytes("edit from d1"), 2.0);
  d2->workspace.WriteFile("plan", ToBytes("edit from d2"), 2.5);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  auto stats = d2->service->RunOnce();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->conflicts_detected, 1u);
  EXPECT_GE(stats->conflicts_resolved, 1u);

  // After both settle once more, the devices converge: "plan" holds the
  // newest edit and the loser survives under a conflict name.
  ASSERT_TRUE(d1->service->RunOnce().ok());
  ASSERT_TRUE(d2->service->RunOnce().ok());
  EXPECT_EQ(ToString(*d1->workspace.ReadFile("plan")), "edit from d2");
  EXPECT_EQ(ToString(*d2->workspace.ReadFile("plan")), "edit from d2");
  bool rescued = false;
  for (const std::string& name : d1->workspace.FileNames()) {
    if (name != "plan" && StartsWith(name, "plan.conflict-")) {
      rescued = true;
      EXPECT_EQ(ToString(*d1->workspace.ReadFile(name)), "edit from d1");
    }
  }
  EXPECT_TRUE(rescued);
}

TEST(SyncServiceTest, ReportOnlyPolicyLeavesConflictAlone) {
  SharedCloud cloud;
  SyncOptions report_only;
  report_only.conflict_policy = ConflictPolicy::kReportOnly;
  auto d1 = cloud.MakeDevice("d1", report_only);
  auto d2 = cloud.MakeDevice("d2", report_only);
  d1->client->set_time(1.0);
  d1->workspace.WriteFile("plan", ToBytes("base"), 1.0);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  ASSERT_TRUE(d2->service->RunOnce().ok());
  d1->client->set_time(2.0);
  d2->client->set_time(2.5);
  d1->workspace.WriteFile("plan", ToBytes("edit1"), 2.0);
  d2->workspace.WriteFile("plan", ToBytes("edit2"), 2.5);
  ASSERT_TRUE(d1->service->RunOnce().ok());
  auto stats = d2->service->RunOnce();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->conflicts_detected, 1u);
  EXPECT_EQ(stats->conflicts_resolved, 0u);
  // Both heads remain live.
  std::vector<const FileVersion*> live;
  for (const FileVersion* head : d2->client->tree().Heads("plan")) {
    if (!head->deleted) {
      live.push_back(head);
    }
  }
  EXPECT_EQ(live.size(), 2u);
}

TEST(SyncServiceTest, PeriodicSyncUnderEventQueue) {
  SharedCloud cloud;
  SyncOptions options;
  options.interval_seconds = 30.0;
  auto d1 = cloud.MakeDevice("d1", options);
  auto d2 = cloud.MakeDevice("d2", options);

  EventQueue queue;
  d1->service->Start(&queue);
  d2->service->Start(&queue);

  // A file written on d1 at t=10 appears on d2 after both have synced.
  queue.ScheduleAt(10.0, [&] {
    d1->workspace.WriteFile("auto.txt", ToBytes("periodic"), queue.now());
  });
  queue.RunUntil(100.0);
  EXPECT_TRUE(d2->workspace.Exists("auto.txt"));
  EXPECT_GE(d1->service->lifetime_stats().uploads, 1u);
  EXPECT_GE(d2->service->lifetime_stats().downloads, 1u);

  d1->service->Stop();
  d2->service->Stop();
  queue.RunUntil(200.0);  // drains the final scheduled callbacks
  EXPECT_FALSE(d1->service->running());
}

TEST(SyncServiceTest, TrulyConcurrentWritersProduceSiblingHeads) {
  // Two devices Put the same name at the same wall moment from two
  // threads, each through its own pipelined engine against the *shared*
  // simulated providers. Neither sees the other's metadata before
  // publishing, so after a sync both version trees must hold two live
  // sibling heads (paper Figure 8's same-name case) and no bytes of
  // either write may be lost.
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->client->set_time(1.0);
  d2->client->set_time(1.0);

  const Bytes content1 = ToBytes(std::string(6000, 'a') + "written by d1");
  const Bytes content2 = ToBytes(std::string(6000, 'b') + "written by d2");
  Result<PutResult> put1 = InternalError("not run");
  Result<PutResult> put2 = InternalError("not run");
  {
    // Synchronize the two Puts as closely as the scheduler allows.
    std::atomic<int> ready{0};
    auto racer = [&ready](CyrusClient* client, const Bytes& content,
                          Result<PutResult>* out) {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }
      *out = client->Put("raced.doc", content);
    };
    std::thread t1(racer, d1->client.get(), std::cref(content1), &put1);
    std::thread t2(racer, d2->client.get(), std::cref(content2), &put2);
    t1.join();
    t2.join();
  }
  ASSERT_TRUE(put1.ok()) << put1.status();
  ASSERT_TRUE(put2.ok()) << put2.status();

  // Each device pulls the other's metadata; both writes are root versions
  // of the same name, so the tree records them as sibling live heads.
  auto conflicts1 = d1->client->SyncMetadata();
  ASSERT_TRUE(conflicts1.ok()) << conflicts1.status();
  ASSERT_EQ(conflicts1->size(), 1u);
  EXPECT_EQ((*conflicts1)[0].type, ConflictType::kSameName);
  std::vector<const FileVersion*> live;
  for (const FileVersion* head : d1->client->tree().Heads("raced.doc")) {
    if (!head->deleted) {
      live.push_back(head);
    }
  }
  ASSERT_EQ(live.size(), 2u);
  EXPECT_TRUE(IsNullDigest(live[0]->prev_id));
  EXPECT_TRUE(IsNullDigest(live[1]->prev_id));
  EXPECT_NE(live[0]->id, live[1]->id);

  // Both writes remain retrievable by version id: nothing was clobbered.
  for (const FileVersion* head : live) {
    auto get = d1->client->GetVersion("raced.doc", head->id);
    ASSERT_TRUE(get.ok()) << get.status();
    EXPECT_TRUE(get->content == content1 || get->content == content2);
  }
}

TEST(SyncServiceTest, ConcurrentWritersAutoResolveKeepsBothContents) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  auto d2 = cloud.MakeDevice("d2");
  d1->client->set_time(1.0);
  d2->client->set_time(2.0);  // d2's write is newer; it must win the name

  Result<PutResult> put1 = InternalError("not run");
  Result<PutResult> put2 = InternalError("not run");
  {
    std::atomic<int> ready{0};
    auto racer = [&ready](CyrusClient* client, const char* text,
                          Result<PutResult>* out) {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }
      *out = client->Put("notes.txt", ToBytes(text));
    };
    std::thread t1(racer, d1->client.get(), "older write", &put1);
    std::thread t2(racer, d2->client.get(), "newer write", &put2);
    t1.join();
    t2.join();
  }
  ASSERT_TRUE(put1.ok()) << put1.status();
  ASSERT_TRUE(put2.ok()) << put2.status();

  // The sync service on d1 detects the sibling heads and auto-resolves:
  // newest head keeps the name, the loser is renamed, nothing is lost.
  auto stats = d1->service->RunOnce();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->conflicts_detected, 1u);
  EXPECT_GE(stats->conflicts_resolved, 1u);
  ASSERT_TRUE(d1->service->RunOnce().ok());  // settle the rename locally

  EXPECT_EQ(ToString(*d1->workspace.ReadFile("notes.txt")), "newer write");
  bool rescued = false;
  for (const std::string& name : d1->workspace.FileNames()) {
    if (StartsWith(name, "notes.txt.conflict-")) {
      rescued = true;
      EXPECT_EQ(ToString(*d1->workspace.ReadFile(name)), "older write");
    }
  }
  EXPECT_TRUE(rescued);

  // Under kReportOnly the same race is surfaced but left untouched
  // (covered for sequential writers above; here we just confirm the raced
  // heads are visible to a report-only reader too).
  SyncOptions report_only;
  report_only.conflict_policy = ConflictPolicy::kReportOnly;
  auto d3 = cloud.MakeDevice("d3", report_only);
  auto observer = d3->service->RunOnce();
  ASSERT_TRUE(observer.ok()) << observer.status();
  EXPECT_EQ(observer->conflicts_resolved, 0u);
}

TEST(SyncServiceTest, ToleratesCspOutageDuringSync) {
  SharedCloud cloud;
  auto d1 = cloud.MakeDevice("d1");
  d1->workspace.WriteFile("doc", ToBytes("content"), 1.0);
  cloud.csps[0]->set_available(false);
  auto stats = d1->service->RunOnce();
  ASSERT_TRUE(stats.ok()) << stats.status();  // n > t absorbs one outage
  EXPECT_EQ(stats->uploads, 1u);
  cloud.csps[0]->set_available(true);
  auto d2 = cloud.MakeDevice("d2");
  ASSERT_TRUE(d2->service->RunOnce().ok());
  EXPECT_TRUE(d2->workspace.Exists("doc"));
}

}  // namespace
}  // namespace cyrus
