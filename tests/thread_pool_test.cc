#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  pool.ParallelFor(50, [&](size_t i) { hits[i] = 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  pool.ParallelFor(8, [&](size_t) {
    const int now = inside.fetch_add(1) + 1;
    int expected = max_inside.load();
    while (now > expected && !max_inside.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    inside.fetch_sub(1);
  });
  EXPECT_GT(max_inside.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(20, [&](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  pool.ParallelFor(10, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

TEST(TaskGroupTest, WaitGroupJoinsExactlyItsOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> group_a{0};
  std::atomic<int> group_b{0};
  ThreadPool::TaskGroup a;
  ThreadPool::TaskGroup b;
  for (int i = 0; i < 20; ++i) {
    pool.Submit(a, [&] { group_a.fetch_add(1); });
    pool.Submit(b, [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      group_b.fetch_add(1);
    });
  }
  pool.WaitGroup(a);
  EXPECT_EQ(group_a.load(), 20);  // b may still be running; a must be done
  pool.WaitGroup(b);
  EXPECT_EQ(group_b.load(), 20);
}

TEST(TaskGroupTest, NestedForkJoinFromInsideAPoolTaskDoesNotDeadlock) {
  // A pipelined chunk runs ScatterChunk on a pool thread, which fans its n
  // share uploads out with ParallelFor. With as many outer tasks as
  // threads, a blocking wait would deadlock; the work-assist wait must let
  // the outer tasks execute their own subtasks.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(OrderedPipelineTest, CompletionsDeliverInSubmissionOrder) {
  ThreadPool pool(4);
  OrderedPipeline::Options options;
  options.max_in_flight = 4;
  OrderedPipeline pipeline(&pool, options);
  std::vector<int> delivered;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pipeline
                    .Submit(
                        1,
                        [i] {
                          // Earlier tasks sleep longer, so raw completion
                          // order is roughly *reversed*; delivery must
                          // still be 0, 1, 2, ...
                          std::this_thread::sleep_for(
                              std::chrono::microseconds((32 - i) * 50));
                        },
                        [i, &delivered]() -> Status {
                          delivered.push_back(i);
                          return OkStatus();
                        })
                    .ok());
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_EQ(delivered.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(delivered[i], i);
  }
}

TEST(OrderedPipelineTest, WindowBoundsInFlightTasks) {
  ThreadPool pool(8);
  OrderedPipeline::Options options;
  options.max_in_flight = 3;
  OrderedPipeline pipeline(&pool, options);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(pipeline
                    .Submit(
                        1,
                        [&] {
                          const int now = inside.fetch_add(1) + 1;
                          int expected = max_inside.load();
                          while (now > expected &&
                                 !max_inside.compare_exchange_weak(expected, now)) {
                          }
                          std::this_thread::sleep_for(std::chrono::microseconds(200));
                          inside.fetch_sub(1);
                        },
                        [] { return OkStatus(); })
                    .ok());
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  EXPECT_LE(max_inside.load(), 3);
  EXPECT_LE(pipeline.max_depth_seen(), 3u);
}

TEST(OrderedPipelineTest, ByteBudgetAdmitsOversizedItemWhenAlone) {
  ThreadPool pool(2);
  OrderedPipeline::Options options;
  options.max_in_flight = 8;
  options.max_in_flight_bytes = 100;
  OrderedPipeline pipeline(&pool, options);
  int completions = 0;
  // 500 > 100: must pass through alone rather than deadlock; the small
  // followers then fit again.
  for (uint64_t cost : {uint64_t{500}, uint64_t{40}, uint64_t{40}, uint64_t{40}}) {
    ASSERT_TRUE(pipeline
                    .Submit(
                        cost, [] {},
                        [&completions] {
                          ++completions;
                          return OkStatus();
                        })
                    .ok());
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  EXPECT_EQ(completions, 4);
}

TEST(OrderedPipelineTest, FirstErrorLatchesAndSkipsLaterCompletions) {
  ThreadPool pool(4);
  OrderedPipeline::Options options;
  options.max_in_flight = 2;
  OrderedPipeline pipeline(&pool, options);
  std::atomic<int> later_completions{0};
  ASSERT_TRUE(pipeline
                  .Submit(
                      1, [] {},
                      [] { return InternalError("chunk 0 failed"); })
                  .ok());
  // Later submissions may observe the latched error (Submit surfaces it)
  // or slip in before delivery; either way their completions never run.
  for (int i = 0; i < 6; ++i) {
    (void)pipeline.Submit(
        1, [] {},
        [&later_completions] {
          later_completions.fetch_add(1);
          return OkStatus();
        });
  }
  const Status drained = pipeline.Drain();
  EXPECT_EQ(drained.code(), StatusCode::kInternal);
  EXPECT_EQ(later_completions.load(), 0);
}

TEST(OrderedPipelineTest, NullPoolRunsInlineAndOrdered) {
  OrderedPipeline::Options options;
  options.max_in_flight = 4;
  OrderedPipeline pipeline(nullptr, options);
  std::vector<int> delivered;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pipeline
                    .Submit(
                        1, [] {},
                        [i, &delivered] {
                          delivered.push_back(i);
                          return OkStatus();
                        })
                    .ok());
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  ASSERT_EQ(delivered.size(), 10u);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
}

TEST(OrderedPipelineTest, WindowOfOneIsFullySequential) {
  ThreadPool pool(4);
  OrderedPipeline::Options options;
  options.max_in_flight = 1;
  OrderedPipeline pipeline(&pool, options);
  std::atomic<int> inside{0};
  bool overlap = false;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pipeline
                    .Submit(
                        1,
                        [&] {
                          if (inside.fetch_add(1) != 0) {
                            overlap = true;  // read post-drain only
                          }
                          inside.fetch_sub(1);
                        },
                        [] { return OkStatus(); })
                    .ok());
  }
  ASSERT_TRUE(pipeline.Drain().ok());
  EXPECT_FALSE(overlap);
  EXPECT_EQ(pipeline.max_depth_seen(), 1u);
}

}  // namespace
}  // namespace cyrus
