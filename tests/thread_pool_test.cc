#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "src/util/thread_pool.h"

namespace cyrus {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  pool.ParallelFor(50, [&](size_t i) { hits[i] = 1; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  pool.ParallelFor(8, [&](size_t) {
    const int now = inside.fetch_add(1) + 1;
    int expected = max_inside.load();
    while (now > expected && !max_inside.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    inside.fetch_sub(1);
  });
  EXPECT_GT(max_inside.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(20, [&](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  pool.ParallelFor(10, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

}  // namespace
}  // namespace cyrus
