#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/bytes.h"
#include "src/util/hex.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("file missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "file missing");
  EXPECT_EQ(s.ToString(), "not_found: file missing");
}

TEST(StatusTest, CopyIsCheapAndEquivalent) {
  Status a = UnavailableError("csp down");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kUnavailable);
  EXPECT_EQ(b.message(), "csp down");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(ConflictError("").code(), StatusCode::kConflict);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return DataLossError("boom"); };
  auto outer = [&]() -> Status {
    CYRUS_RETURN_IF_ERROR(inner());
    return OkStatus();
  };
  EXPECT_EQ(outer().code(), StatusCode::kDataLoss);
}

// --- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) {
      return std::string("hello");
    }
    return InternalError("bad");
  };
  auto use = [&](bool ok) -> Result<size_t> {
    CYRUS_ASSIGN_OR_RETURN(std::string s, make(ok));
    return s.size();
  };
  ASSERT_TRUE(use(true).ok());
  EXPECT_EQ(*use(true), 5u);
  EXPECT_EQ(use(false).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

// --- Hex ---

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  const std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abcdefff");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(HexTest, DecodesUppercase) {
  auto r = HexDecode("DEADBEEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], 0xde);
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_EQ(HexDecode("abc").status().code(), StatusCode::kInvalidArgument);
}

TEST(HexTest, RejectsNonHex) {
  EXPECT_EQ(HexDecode("zz").status().code(), StatusCode::kInvalidArgument);
}

TEST(HexTest, EmptyInput) {
  EXPECT_EQ(HexEncode({}), "");
  auto r = HexDecode("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// --- Bytes ---

TEST(BytesTest, TextRoundTrip) {
  Bytes b = ToBytes("cyrus");
  EXPECT_EQ(ToString(b), "cyrus");
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteSpan(a.data(), 2)));
}

// --- Rng ---

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / kTrials, 3.0, 0.1);
}

TEST(RngTest, GaussianHasRequestedMoments) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --- Strings ---

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("/a", '/'), (std::vector<std::string>{"", "a"}));
}

TEST(StringsTest, Affixes) {
  EXPECT_TRUE(StartsWith("meta-abc", "meta-"));
  EXPECT_FALSE(StartsWith("abc", "meta-"));
  EXPECT_TRUE(EndsWith("photo.jpg", ".jpg"));
  EXPECT_FALSE(EndsWith("photo.jpg", ".png"));
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("t=", 2, " n=", 3), "t=2 n=3");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(40 * 1024 * 1024), "40.00 MB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(1.5), "1.500 s");
}

// --- Retry ---

TEST(RetryTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryableStatus(UnavailableError("link dropped")));
  EXPECT_FALSE(IsRetryableStatus(OkStatus()));
  EXPECT_FALSE(IsRetryableStatus(NotFoundError("gone")));
  EXPECT_FALSE(IsRetryableStatus(PermissionDeniedError("bad token")));
  EXPECT_FALSE(IsRetryableStatus(ResourceExhaustedError("quota")));
}

TEST(RetryTest, SucceedsFirstTryWithoutBackoff) {
  int calls = 0;
  int delays = 0;
  Status s = RetryWithBackoff(
      RetryOptions{}, [&] { ++calls; return OkStatus(); },
      [&](double) { ++delays; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(delays, 0);
}

TEST(RetryTest, RetriesTransientUntilSuccess) {
  int calls = 0;
  auto op = [&]() -> Status {
    return ++calls < 3 ? UnavailableError("flaky") : OkStatus();
  };
  EXPECT_TRUE(RetryWithBackoff(RetryOptions{}, op).ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, StopsAtAttemptBudget) {
  RetryOptions options;
  options.max_attempts = 4;
  int calls = 0;
  Status s = RetryWithBackoff(options, [&] {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, SingleAttemptDisablesRetries) {
  RetryOptions options;
  options.max_attempts = 1;
  int calls = 0;
  Status s = RetryWithBackoff(options, [&] {
    ++calls;
    return UnavailableError("down");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  int calls = 0;
  Status s = RetryWithBackoff(RetryOptions{}, [&] {
    ++calls;
    return PermissionDeniedError("bad token");
  });
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, WorksWithResultOps) {
  int calls = 0;
  auto op = [&]() -> Result<int> {
    if (++calls < 2) {
      return UnavailableError("flaky");
    }
    return 42;
  };
  Result<int> r = RetryWithBackoff(RetryOptions{}, op);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff_ms = 10.0;
  options.max_backoff_ms = 1000.0;
  options.multiplier = 2.0;
  options.jitter = 0.5;
  RetryBackoff backoff(options);
  double base = options.initial_backoff_ms;
  while (backoff.ShouldRetry()) {
    const double delay = backoff.NextDelayMs();
    EXPECT_GE(delay, base * 0.5);
    EXPECT_LT(delay, base * 1.5);
    base = std::min(base * options.multiplier, options.max_backoff_ms);
  }
  EXPECT_EQ(backoff.attempts(), options.max_attempts);
}

TEST(RetryTest, DelayCapRespected) {
  RetryOptions options;
  options.max_attempts = 20;
  options.initial_backoff_ms = 100.0;
  options.max_backoff_ms = 250.0;
  options.jitter = 0.0;
  RetryBackoff backoff(options);
  double last = 0.0;
  while (backoff.ShouldRetry()) {
    last = backoff.NextDelayMs();
    EXPECT_LE(last, 250.0);
  }
  EXPECT_DOUBLE_EQ(last, 250.0);
}

TEST(RetryTest, SameSeedSameDelays) {
  RetryOptions options;
  options.max_attempts = 8;
  options.seed = 99;
  RetryBackoff a(options);
  RetryBackoff b(options);
  while (a.ShouldRetry()) {
    EXPECT_DOUBLE_EQ(a.NextDelayMs(), b.NextDelayMs());
  }
}

}  // namespace
}  // namespace cyrus
